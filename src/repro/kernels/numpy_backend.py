"""The ``numpy`` kernel: vectorized hot paths over packed bitset matrices.

Where the reference backend walks points one at a time, this backend
batches whole phases into array operations while producing *bit-identical*
structures and results (the conformance suite enforces it):

* **Grid mapping** floors every coordinate in one shot, encodes cell keys
  as mixed-radix ``int64`` codes, and rebuilds both grids from sorted
  ``(cell, object)`` pair groups — per-cell bitsets come from a packed
  ``(cells, words)`` ``uint64`` matrix filled with ``np.bitwise_or.at``.
* **Lower bounding** OR-reduces the packed small-grid rows of each
  object's key list and popcounts with ``np.bitwise_count``.
* **Upper bounding** computes *all* adjacent unions at once: one
  ``searchsorted`` per neighbour offset aligns every cell with its
  neighbour's packed row, so the ``3^d`` dictionary walks per cell
  disappear.  Label-producing or label-consuming passes delegate to the
  reference backend — Labeling-1/2 bookkeeping depends on the serial
  scan order.
* **Verification** keeps the best-first loop (it owns labeling and early
  termination) but answers the distance primitive in early-exit chunks
  per Corollary 1: one pair within ``r`` settles the object pair, so
  later rows need never be touched.

The packed matrices ride on private ``SmallGrid``/``LargeGrid``/``BIGrid``
subclasses; every public structure (cells, postings, key lists, group
maps, counters, memory accounting) matches the serial build exactly, so
downstream phases — including the pure-python ones — run unchanged on a
numpy-built grid.

Requires numpy >= 2.0 (``np.bitwise_count``); the registry in
:mod:`repro.kernels` feature-detects this and falls back to the python
backend otherwise.  Inputs whose cell-index spread would overflow the
``int64`` key encoding (astronomically sparse grids) fall back per call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bitset.factory import bitset_class
from repro.core.lower_bound import LowerBoundResult
from repro.core.upper_bound import Candidate, UpperBoundResult
from repro.grid.bigrid import BIGrid
from repro.grid.keys import (
    cell_and_adjacent_keys,
    compute_keys,
    large_cell_width,
    neighbor_offsets,
    small_cell_width,
)
from repro.grid.large_grid import LargeGrid, LargeGridCell
from repro.grid.small_grid import SmallGrid, SmallGridCell
from repro.kernels.base import KernelBackend
from repro.kernels.python_backend import PYTHON_KERNEL
from repro.resilience import checkpoint

#: Rows per block of the early-exit verification distance check.  Small
#: enough that a first-block hit skips most of a long posting list, large
#: enough that the loop overhead stays invisible for short ones.
DISTANCE_CHUNK = 256


def _row_int(words: np.ndarray) -> int:
    """One packed uint64 row -> the big-int bitset value (word i at bit 64*i)."""
    return int.from_bytes(words.astype("<u8", copy=False).tobytes(), "little")


def _encode_keys(keys: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Mixed-radix ``int64`` codes for integer key rows, or None on overflow.

    Axes are shifted to a 1-cell margin on both sides so that *neighbour*
    keys (every per-axis offset in ``{-1, 0, +1}``) also encode uniquely:
    ``code(key + offset) == code(key) + dot(offset, strides)`` for every
    key present in ``keys``.  Returns ``(codes, strides)``; None when the
    padded extent product would overflow (the caller falls back to the
    reference implementation).
    """
    mins = keys.min(axis=0) - 1
    shifted = keys - mins
    extents = shifted.max(axis=0) + 2
    total = 1
    for extent in extents.tolist():
        total *= int(extent)
        if total >= 2 ** 62:
            return None
    strides = np.empty(keys.shape[1], dtype=np.int64)
    accumulated = 1
    for axis in range(keys.shape[1] - 1, -1, -1):
        strides[axis] = accumulated
        accumulated *= int(extents[axis])
    return shifted @ strides, strides


def _row_ints(packed: np.ndarray) -> List[int]:
    """Big-int bitset values for every packed row, in bulk."""
    if packed.shape[1] == 1:
        return packed[:, 0].tolist()
    stride = packed.shape[1] * 8
    data = np.ascontiguousarray(packed.astype("<u8", copy=False)).tobytes()
    return [
        int.from_bytes(data[start : start + stride], "little")
        for start in range(0, len(data), stride)
    ]


class LazyBitsetSmallCell(SmallGridCell):
    """A small-grid cell whose compressed bitset is built on first access.

    The vectorized phases never read per-cell bitsets (they reduce the
    packed matrix instead), so eagerly compressing one bitset per cell
    would be pure build-time overhead.  The big-int value is kept and the
    compressed form materializes lazily — any consumer (serial phases on
    a numpy-built grid, memory accounting, tests) sees the identical
    bitset it would on a serial build.
    """

    __slots__ = ("_lazy_bitset",)

    def __init__(self, bitset_cls, value: int) -> None:
        # Deliberately skip the parent __init__: the ``bitset`` slot stays
        # unset until first access (__getattr__ fills it).
        self._lazy_bitset = (bitset_cls, value)
        self.distinct_objects = 0
        self.first_oid = -1
        self.last_oid = -1

    def __getattr__(self, name: str):
        if name == "bitset":
            bitset_cls, value = self._lazy_bitset
            bitset = bitset_cls.from_int(value)
            self.bitset = bitset
            return bitset
        raise AttributeError(name)


class LazyBitsetLargeCell(LargeGridCell):
    """A large-grid cell with the same lazy-bitset scheme (see above)."""

    __slots__ = ("_lazy_bitset",)

    def __init__(self, bitset_cls, value: int) -> None:
        self._lazy_bitset = (bitset_cls, value)
        self.postings = {}
        self.last_oid = -1

    def __getattr__(self, name: str):
        if name == "bitset":
            bitset_cls, value = self._lazy_bitset
            bitset = bitset_cls.from_int(value)
            self.bitset = bitset
            return bitset
        if name == "_point_cache":
            cache: dict = {}
            self._point_cache = cache
            return cache
        if name in ("adj_int", "_adj_bitset", "neighbor_cells"):
            # Rarely-read slots default lazily too: one attribute write per
            # cell saved at build time adds up over tens of thousands of
            # cells, and most cells are never asked for their adjacency.
            setattr(self, name, None)
            return None
        raise AttributeError(name)


class PackedSmallGrid(SmallGrid):
    """A :class:`SmallGrid` that also keeps its cells' bitsets as one
    packed ``(cells, words)`` uint64 matrix for vectorized lower bounds."""

    __slots__ = ("packed",)


class PackedLargeGrid(LargeGrid):
    """A :class:`LargeGrid` whose adjacent unions are computed in bulk.

    ``adjacent_union_int`` keeps the base-class semantics; the only
    difference is that when upper-bounding has already written every
    ``adj_int`` from the packed adjacency matrix, the neighbour-cell list
    (which the base class builds as a side effect of the lazy union) is
    materialized on first demand instead.
    """

    __slots__ = ("packed", "codes", "strides", "row_cells")

    def adjacent_union_int(self, key) -> int:
        cell = self.cells[key]
        if cell.adj_int is not None and cell.neighbor_cells is None:
            cells = self.cells
            cell.neighbor_cells = [
                neighbor
                for neighbor_key in cell_and_adjacent_keys(key)
                if (neighbor := cells.get(neighbor_key)) is not None
            ]
        return super().adjacent_union_int(key)


class PackedBIGrid(BIGrid):
    """A :class:`BIGrid` carrying row indices into the packed matrices."""

    __slots__ = ("shared_rows", "group_rows")


class NumpyKernel(KernelBackend):
    """Vectorized backend (numpy >= 2.0), bit-exact with the reference."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Cell keys
    # ------------------------------------------------------------------

    def cell_keys(self, points: np.ndarray, width: float) -> List[tuple]:
        # Same floor-and-truncate as the reference (shared helper), so the
        # keys agree bit-for-bit by construction.
        return compute_keys(points, width)

    # ------------------------------------------------------------------
    # GRID-MAPPING (Algorithm 3), batched
    # ------------------------------------------------------------------

    def build_bigrid(
        self,
        collection,
        r: float,
        backend: str = "ewah",
        point_filter=None,
        deadline=None,
        large_keys_provider=None,
    ) -> BIGrid:
        bitset_cls = bitset_class(backend)
        dimension = collection.dimension
        s_width = small_cell_width(r, dimension)
        l_width = large_cell_width(r)
        n = collection.n

        point_blocks: List[np.ndarray] = []
        index_blocks: List[np.ndarray] = []
        oid_blocks: List[np.ndarray] = []
        provided: Optional[List[np.ndarray]] = (
            [] if large_keys_provider is not None else None
        )
        mapped_points = 0
        for obj in collection:
            checkpoint(deadline, "grid_mapping")
            oid = obj.oid
            indices = _selected(obj.num_points, point_filter, oid)
            if len(indices) == 0:
                continue
            mapped_points += len(indices)
            point_blocks.append(obj.points[indices])
            index_blocks.append(indices.astype(np.int64))
            oid_blocks.append(np.full(len(indices), oid, dtype=np.int64))
            if provided is not None:
                # The session's LargeKeyCache must see the same per-object
                # calls (and hit/miss accounting) as the serial build.
                provided.append(
                    np.asarray(
                        large_keys_provider(oid, indices), dtype=np.int64
                    ).reshape(len(indices), dimension)
                )

        small_grid = PackedSmallGrid(s_width, dimension, bitset_cls)
        large_grid = PackedLargeGrid(l_width, dimension, bitset_cls)
        key_lists: List[set] = [set() for _ in range(n)]
        object_groups: List[Dict] = [{} for _ in range(n)]
        bigrid = PackedBIGrid(
            collection, r, small_grid, large_grid, key_lists, object_groups,
            mapped_points,
        )
        words = (n + 63) // 64 if n else 1
        empty_rows = np.empty(0, dtype=np.int64)
        bigrid.shared_rows = [empty_rows] * n
        bigrid.group_rows = [empty_rows] * n

        if mapped_points == 0:
            small_grid.packed = np.zeros((0, words), dtype=np.uint64)
            large_grid.packed = np.zeros((0, words), dtype=np.uint64)
            large_grid.codes = np.empty(0, dtype=np.int64)
            large_grid.strides = np.ones(dimension, dtype=np.int64)
            large_grid.row_cells = []
            return bigrid

        points = np.concatenate(point_blocks)
        point_idx = np.concatenate(index_blocks)
        oids = np.concatenate(oid_blocks)
        small_keys = np.floor(points / s_width).astype(np.int64)
        large_keys = (
            np.concatenate(provided)
            if provided is not None
            else np.floor(points / l_width).astype(np.int64)
        )

        encoded_small = _encode_keys(small_keys)
        encoded_large = _encode_keys(large_keys)
        if encoded_small is None or encoded_large is None:
            # Cell-index spread too wide for int64 codes: astronomically
            # sparse input, not worth a second encoding scheme.
            return PYTHON_KERNEL.build_bigrid(
                collection,
                r,
                backend=backend,
                point_filter=point_filter,
                deadline=deadline,
                large_keys_provider=large_keys_provider,
            )

        checkpoint(deadline, "grid_mapping")
        self._populate_small(
            bigrid, small_keys, encoded_small[0], oids, bitset_cls, n, words
        )
        checkpoint(deadline, "grid_mapping")
        self._populate_large(
            bigrid, large_keys, encoded_large, oids, point_idx, bitset_cls, n,
            words,
        )
        return bigrid

    @staticmethod
    def _populate_small(
        bigrid: PackedBIGrid,
        small_keys: np.ndarray,
        codes: np.ndarray,
        oids: np.ndarray,
        bitset_cls,
        n: int,
        words: int,
    ) -> None:
        """Rebuild the small grid + key lists from sorted (cell, oid) pairs."""
        small_grid = bigrid.small_grid
        uniq_codes, first_pos, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        cell_count = len(uniq_codes)
        cell_keys = [tuple(row) for row in small_keys[first_pos].tolist()]

        # Distinct (cell, oid) pairs, sorted: cell-major, oid ascending —
        # exactly the per-cell object order of the serial scan.
        pair_codes = np.unique(inverse.astype(np.int64) * n + oids)
        pair_cell = pair_codes // n
        pair_oid = pair_codes % n

        packed = np.zeros((cell_count, words), dtype=np.uint64)
        np.bitwise_or.at(
            packed,
            (pair_cell, pair_oid >> 6),
            np.left_shift(np.uint64(1), (pair_oid & 63).astype(np.uint64)),
        )
        small_grid.packed = packed

        rows = np.arange(cell_count)
        starts = np.searchsorted(pair_cell, rows)
        ends = np.searchsorted(pair_cell, rows, side="right")
        distinct = ends - starts
        first_oids = pair_oid[starts]
        last_oids = pair_oid[ends - 1]

        cells = small_grid.cells
        row_values = _row_ints(packed)
        distinct_list = distinct.tolist()
        first_list = first_oids.tolist()
        last_list = last_oids.tolist()
        for row in range(cell_count):
            cell = LazyBitsetSmallCell(bitset_cls, row_values[row])
            cell.distinct_objects = distinct_list[row]
            cell.first_oid = first_list[row]
            cell.last_oid = last_list[row]
            cells[cell_keys[row]] = cell

        # Key lists (o_i.L): every object present in a cell shared by >= 2
        # distinct objects records that cell's key (Algorithm 3, lines 7-10).
        shared_pair = (distinct >= 2)[pair_cell]
        row_lists: List[List[int]] = [[] for _ in range(n)]
        key_lists = bigrid.key_lists
        for row, oid in zip(
            pair_cell[shared_pair].tolist(), pair_oid[shared_pair].tolist()
        ):
            key_lists[oid].add(cell_keys[row])
            row_lists[oid].append(row)
        bigrid.shared_rows = [
            np.asarray(rows_of, dtype=np.int64) for rows_of in row_lists
        ]

    @staticmethod
    def _populate_large(
        bigrid: PackedBIGrid,
        large_keys: np.ndarray,
        encoded: Tuple[np.ndarray, np.ndarray],
        oids: np.ndarray,
        point_idx: np.ndarray,
        bitset_cls,
        n: int,
        words: int,
    ) -> None:
        """Rebuild the large grid (postings + per-object groups) from sorted
        (cell, oid) segments; point order inside each posting list is the
        scan order (the stable sort preserves it)."""
        large_grid = bigrid.large_grid
        codes, strides = encoded
        uniq_codes, first_pos, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        cell_count = len(uniq_codes)
        cell_keys = [tuple(row) for row in large_keys[first_pos].tolist()]

        pair_codes = inverse.astype(np.int64) * n + oids
        order = np.argsort(pair_codes, kind="stable")
        sorted_pairs = pair_codes[order]
        sorted_points = point_idx[order]
        boundaries = np.flatnonzero(np.diff(sorted_pairs)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
        segment_pair = sorted_pairs[starts]
        segment_cell = segment_pair // n
        segment_oid = segment_pair % n
        #: Scan position of each (cell, oid) segment's first point — the
        #: first-occurrence order object_groups must present groups in.
        segment_first = order[starts]

        packed = np.zeros((cell_count, words), dtype=np.uint64)
        np.bitwise_or.at(
            packed,
            (segment_cell, segment_oid >> 6),
            np.left_shift(np.uint64(1), (segment_oid & 63).astype(np.uint64)),
        )

        cells = large_grid.cells
        row_cells: List[LargeGridCell] = []
        row_values = _row_ints(packed)
        for row in range(cell_count):
            cell = LazyBitsetLargeCell(bitset_cls, row_values[row])
            cells[cell_keys[row]] = cell
            row_cells.append(cell)

        groups_acc: List[List[Tuple[int, int, List[int]]]] = [[] for _ in range(n)]
        cell_list = segment_cell.tolist()
        oid_list = segment_oid.tolist()
        first_list = segment_first.tolist()
        points_list = sorted_points.tolist()
        bounds = starts.tolist()
        bounds.append(len(points_list))
        for index in range(len(cell_list)):
            row = cell_list[index]
            oid = oid_list[index]
            posting = points_list[bounds[index] : bounds[index + 1]]
            cell = row_cells[row]
            cell.postings[oid] = posting
            cell.last_oid = oid  # segments arrive oid-ascending per cell
            # postings and object_groups may share the list: both sides are
            # read-only after construction, and equality is what the serial
            # build guarantees.
            groups_acc[oid].append((first_list[index], row, posting))

        group_rows = bigrid.group_rows
        object_groups = bigrid.object_groups
        for oid in range(n):
            accumulated = groups_acc[oid]
            accumulated.sort(key=lambda item: item[0])
            rows_of = np.empty(len(accumulated), dtype=np.int64)
            groups = object_groups[oid]
            for position, (_, row, posting) in enumerate(accumulated):
                groups[cell_keys[row]] = posting
                rows_of[position] = row
            group_rows[oid] = rows_of

        large_grid.packed = packed
        large_grid.codes = uniq_codes
        large_grid.strides = strides
        large_grid.row_cells = row_cells

    # ------------------------------------------------------------------
    # LOWER-BOUNDING (Algorithm 4), packed
    # ------------------------------------------------------------------

    def lower_bounds(self, bigrid, keep_bitsets=False, stats=None, deadline=None):
        if not isinstance(bigrid, PackedBIGrid):
            return PYTHON_KERNEL.lower_bounds(
                bigrid, keep_bitsets=keep_bitsets, stats=stats, deadline=deadline
            )
        packed = bigrid.small_grid.packed
        bitset_cls = bigrid.small_grid.bitset_cls
        values: List[int] = []
        bitsets: Optional[List] = [] if keep_bitsets else None
        tau_max = 0
        or_operations = 0

        for oid in range(bigrid.collection.n):
            checkpoint(deadline, "lower_bounding")
            rows = bigrid.shared_rows[oid]
            if len(rows) == 0:
                values.append(0)
                if bitsets is not None:
                    bitsets.append(None)
                continue
            or_operations += len(rows)
            union_words = np.bitwise_or.reduce(packed[rows], axis=0)
            cardinality = int(np.bitwise_count(union_words).sum())
            lower = cardinality - 1 if cardinality else 0
            values.append(lower)
            if lower > tau_max:
                tau_max = lower
            if bitsets is not None:
                bitsets.append(
                    bitset_cls.from_int(_row_int(union_words)) if cardinality else None
                )

        if stats is not None:
            stats.set_count("lower_or_operations", or_operations)
            stats.set_count("tau_max_low", tau_max)
        return LowerBoundResult(values=values, tau_max=tau_max, bitsets=bitsets)

    # ------------------------------------------------------------------
    # UPPER-BOUNDING (Algorithm 5), bulk adjacent unions
    # ------------------------------------------------------------------

    def upper_bounds(
        self, bigrid, tau_max_low, upper_masks=None, labeler=None, stats=None,
        deadline=None,
    ):
        if (
            upper_masks is not None
            or labeler is not None
            or not isinstance(bigrid, PackedBIGrid)
        ):
            # Labeling-1/2 (and mask filtering) depend on the serial scan
            # order; the contract demands delegation, not approximation.
            return PYTHON_KERNEL.upper_bounds(
                bigrid,
                tau_max_low,
                upper_masks=upper_masks,
                labeler=labeler,
                stats=stats,
                deadline=deadline,
            )
        large_grid = bigrid.large_grid
        packed = large_grid.packed
        codes = large_grid.codes
        cell_count = len(codes)
        checkpoint(deadline, "upper_bounding")

        # b_adj for every cell at once: one searchsorted per neighbour
        # offset aligns each cell with that neighbour's packed row.
        adjacency = packed.copy()
        if cell_count:
            strides = large_grid.strides
            for offset in neighbor_offsets(bigrid.collection.dimension):
                delta = int(np.asarray(offset, dtype=np.int64) @ strides)
                targets = codes + delta
                positions = np.searchsorted(codes, targets)
                positions[positions == cell_count] = 0
                hit = codes[positions] == targets
                if hit.any():
                    adjacency[hit] |= packed[positions[hit]]

        fresh_unions = 0
        for row, cell in enumerate(large_grid.row_cells):
            if cell.adj_int is None:
                cell.adj_int = _row_int(adjacency[row])
                fresh_unions += 1
        large_grid.adj_computed += fresh_unions

        values: List[int] = []
        candidates: List[Candidate] = []
        groups_processed = 0
        for oid in range(bigrid.collection.n):
            checkpoint(deadline, "upper_bounding")
            rows = bigrid.group_rows[oid]
            groups_processed += len(rows)
            if len(rows) == 0:
                upper = 0
            else:
                union_words = np.bitwise_or.reduce(adjacency[rows], axis=0)
                cardinality = int(np.bitwise_count(union_words).sum())
                upper = cardinality - 1 if cardinality else 0
            values.append(upper)
            if upper >= tau_max_low:
                candidates.append((upper, oid))

        candidates.sort(key=lambda entry: (-entry[0], entry[1]))
        if stats is not None:
            stats.set_count("upper_groups_processed", groups_processed)
            stats.set_count("adj_unions_computed", fresh_unions)
            stats.set_count("candidates", len(candidates))
            stats.set_count("pruned_objects", bigrid.collection.n - len(candidates))
        return UpperBoundResult(candidates=candidates, values=values)

    # ------------------------------------------------------------------
    # Verification distance primitive, early-exit chunked (Corollary 1)
    # ------------------------------------------------------------------

    def any_within(
        self, candidate_points: np.ndarray, point: np.ndarray, r_squared: float
    ) -> bool:
        total = candidate_points.shape[0]
        if total <= DISTANCE_CHUNK:
            diff = candidate_points - point
            return bool(np.einsum("ij,ij->i", diff, diff).min() <= r_squared)
        for start in range(0, total, DISTANCE_CHUNK):
            block = candidate_points[start : start + DISTANCE_CHUNK] - point
            if np.einsum("ij,ij->i", block, block).min() <= r_squared:
                return True
        return False


def _selected(num_points: int, point_filter, oid: int) -> np.ndarray:
    """Point indices surviving the label filter (Lemma 3), as in the
    reference build."""
    if point_filter is None:
        return np.arange(num_points)
    mask = point_filter(oid)
    if mask is None:
        return np.arange(num_points)
    return np.nonzero(mask)[0]


#: The shared vectorized instance.
NUMPY_KERNEL = NumpyKernel()
