"""The ``numpy`` kernel: vectorized hot paths over packed bitset matrices.

Where the reference backend walks points one at a time, this backend
batches whole phases into array operations while producing *bit-identical*
structures and results (the conformance suite enforces it):

* **Grid mapping** floors every coordinate in one shot, encodes cell keys
  as mixed-radix ``int64`` codes, and rebuilds both grids from sorted
  ``(cell, object)`` pair groups — per-cell bitsets come from a packed
  ``(cells, words)`` ``uint64`` matrix filled with ``np.bitwise_or.at``.
* **Lower bounding** OR-reduces the packed small-grid rows of each
  object's key list and popcounts with ``np.bitwise_count``.
* **Upper bounding** computes *all* adjacent unions at once: one
  ``searchsorted`` per neighbour offset aligns every cell with its
  neighbour's packed row, so the ``3^d`` dictionary walks per cell
  disappear.  Label-producing or label-consuming passes delegate to the
  reference backend — Labeling-1/2 bookkeeping depends on the serial
  scan order.
* **Verification** keeps the reference's best-first outer loop (shared
  via :func:`repro.core.verification.best_first_verification`) but scores
  each candidate with *batched* distance blocks: per large cell, the
  posting coordinates of the whole ``3^d`` neighbourhood are gathered
  once into a contiguous array (cached per cell), all candidate-point ×
  posting-row squared distances are computed in one einsum, and
  per-posting minima fall out of one ``np.minimum.reduceat``.  The
  authoritative walk then replays the reference's visit order over the
  precomputed hit booleans, so early termination, Labeling-3 marks, and
  every work counter match the oracle bit-for-bit.

The packed matrices ride on private ``SmallGrid``/``LargeGrid``/``BIGrid``
subclasses; every public structure (cells, postings, key lists, group
maps, counters, memory accounting) matches the serial build exactly, so
downstream phases — including the pure-python ones — run unchanged on a
numpy-built grid.

Requires numpy >= 2.0 (``np.bitwise_count``); the registry in
:mod:`repro.kernels` feature-detects this and falls back to the python
backend otherwise.  Inputs whose cell-index spread would overflow the
``int64`` key encoding (astronomically sparse grids) fall back per call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bitset.factory import bitset_class
from repro.core.lower_bound import LowerBoundResult
from repro.core.upper_bound import Candidate, UpperBoundResult
from repro.core.verification import (
    VerifyCounters,
    best_first_verification,
    bits_of,
)
from repro.grid.bigrid import BIGrid
from repro.grid.keys import (
    cell_and_adjacent_keys,
    compute_keys,
    large_cell_width,
    neighbor_offsets,
    small_cell_width,
)
from repro.grid.large_grid import LargeGrid, LargeGridCell
from repro.grid.small_grid import SmallGrid, SmallGridCell
from repro.kernels.base import KernelBackend
from repro.kernels.python_backend import PYTHON_KERNEL
from repro.resilience import checkpoint

#: Rows per block of the early-exit verification distance check.  Small
#: enough that a first-block hit skips most of a long posting list, large
#: enough that the loop overhead stays invisible for short ones.
DISTANCE_CHUNK = 256

#: Size-based dispatch for LOWER-BOUNDING: below this many packed-row OR
#: operations in total, the fixed numpy dispatch overhead (``flatnonzero``,
#: ``cumsum``, ``reduceat`` setup) exceeds the work itself, and running the
#: reference algorithm -- sequential per-object big-int unions in the same
#: order -- straight over the pre-gathered words wins.  Measured on cold
#: grids (rebuilt per repetition, as the speedup bench does) over
#: ``neuron`` samples from 36 to 1067 shared rows: the sequential path won
#: every size up to ~790 rows and the two paths track within noise beyond
#: it.  ``tests/test_lower_bound.py`` pins the dispatch behavior on both
#: sides.  Module-level and read at call time so tests can monkeypatch it.
LOWER_BOUND_DISPATCH_MIN_ROWS = 768


try:
    # The core of ``np.einsum``: the public wrapper forwards unoptimized
    # two-operand calls here verbatim, so results are bit-identical to the
    # reference's ``np.einsum`` -- only the per-call python dispatch layer
    # (~1us, material at verification's call rates) is skipped.
    from numpy._core._multiarray_umath import c_einsum as _c_einsum
except ImportError:  # pragma: no cover - older numpy core layout
    _c_einsum = np.einsum


def _row_int(words: np.ndarray) -> int:
    """One packed uint64 row -> the big-int bitset value (word i at bit 64*i)."""
    return int.from_bytes(words.astype("<u8", copy=False).tobytes(), "little")


def encode_keys(keys: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Mixed-radix ``int64`` codes for integer key rows, or None on overflow.

    Axes are shifted to a 1-cell margin on both sides so that *neighbour*
    keys (every per-axis offset in ``{-1, 0, +1}``) also encode uniquely:
    ``code(key + offset) == code(key) + dot(offset, strides)`` for every
    key present in ``keys``.  Returns ``(codes, strides)``; None when the
    padded extent product would overflow (the caller falls back to the
    reference implementation).  Public because the shard router reuses
    the same codes to place objects on a space-filling curve.
    """
    mins = keys.min(axis=0) - 1
    shifted = keys - mins
    extents = shifted.max(axis=0) + 2
    total = 1
    for extent in extents.tolist():
        total *= int(extent)
        if total >= 2 ** 62:
            return None
    strides = np.empty(keys.shape[1], dtype=np.int64)
    accumulated = 1
    for axis in range(keys.shape[1] - 1, -1, -1):
        strides[axis] = accumulated
        accumulated *= int(extents[axis])
    return shifted @ strides, strides


#: Back-compat alias; prefer the public name.
_encode_keys = encode_keys


class LazyBitsetSmallCell(SmallGridCell):
    """A small-grid cell whose compressed bitset is built on first access.

    The vectorized phases never read per-cell bitsets (they reduce the
    packed matrix instead), so eagerly compressing one bitset per cell —
    or even converting its packed row to a big int — would be pure
    build-time overhead.  The cell keeps ``(bitset_cls, packed, row)``
    and the compressed form materializes lazily — any consumer (serial
    phases on a numpy-built grid, memory accounting, tests) sees the
    identical bitset it would on a serial build.
    """

    __slots__ = ("_lazy_bitset",)

    def __init__(self, bitset_cls, packed: np.ndarray, row: int) -> None:
        # Deliberately skip the parent __init__: the ``bitset`` slot stays
        # unset until first access (__getattr__ fills it).
        self._lazy_bitset = (bitset_cls, packed, row)
        self.distinct_objects = 0
        self.first_oid = -1
        self.last_oid = -1

    def __getattr__(self, name: str):
        if name == "bitset":
            bitset_cls, packed, row = self._lazy_bitset
            bitset = bitset_cls.from_int(_row_int(packed[row]))
            self.bitset = bitset
            return bitset
        raise AttributeError(name)


class LazyBitsetLargeCell(LargeGridCell):
    """A large-grid cell with the same lazy-bitset scheme (see above).

    The adjacent union is lazy too: ``adj_int`` resolves from the grid's
    bulk adjacency matrix (``PackedLargeGrid.adj_words``) once
    upper-bounding has computed it, so upper-bounding never pays the
    per-cell big-int conversions — only the cells verification actually
    touches convert their row.  Before the matrix exists the attribute
    reads as None (uncached, so it resolves correctly later), which is
    exactly the base-class state that makes ``adjacent_union_int``
    compute the union on demand.
    """

    __slots__ = ("_lazy_bitset", "_row")

    def __init__(self, bitset_cls, grid: "PackedLargeGrid", row: int) -> None:
        self._lazy_bitset = (bitset_cls, grid)
        self._row = row
        self.postings = {}
        self.last_oid = -1

    def __getattr__(self, name: str):
        if name == "bitset":
            bitset_cls, grid = self._lazy_bitset
            bitset = bitset_cls.from_int(_row_int(grid.packed[self._row]))
            self.bitset = bitset
            return bitset
        if name == "adj_int":
            _, grid = self._lazy_bitset
            if grid.adj_words is None:
                # Not cached: the bulk matrix may appear later (upper
                # bounding), and a stored None would mask it forever.
                return None
            value = _row_int(grid.adj_words[self._row])
            self.adj_int = value
            return value
        if name == "_point_cache":
            cache: dict = {}
            self._point_cache = cache
            return cache
        if name in ("_adj_bitset", "neighbor_cells"):
            # Rarely-read slots default lazily too: one attribute write per
            # cell saved at build time adds up over tens of thousands of
            # cells, and most cells are never asked for their adjacency.
            setattr(self, name, None)
            return None
        raise AttributeError(name)


class PackedSmallGrid(SmallGrid):
    """A :class:`SmallGrid` that also keeps its cells' bitsets as one
    packed ``(cells, words)`` uint64 matrix for vectorized lower bounds."""

    __slots__ = ("packed",)


class PackedLargeGrid(LargeGrid):
    """A :class:`LargeGrid` whose adjacent unions are computed in bulk.

    ``adjacent_union_int`` keeps the base-class semantics; the only
    difference is that when upper-bounding has already computed the bulk
    adjacency matrix (``adj_words`` — per-cell ``adj_int`` values resolve
    lazily from its rows), the neighbour-cell list (which the base class
    builds as a side effect of the lazy union) is materialized on first
    demand instead.

    The ``seg_*`` arrays are the flat segment view of the grid that the
    batched verifier consumes: segment ``s`` is one ``(cell, oid)``
    posting list, sorted cell-major/oid-ascending, with its point
    *coordinates* at rows ``seg_bounds[s]:seg_bounds[s+1]`` of
    ``seg_coords`` (in posting order).  ``verify_tables`` caches the
    derived per-cell neighbourhood specs.
    """

    __slots__ = (
        "packed",
        "codes",
        "strides",
        "row_cells",
        "adj_words",
        "seg_cell",
        "seg_oid",
        "seg_bounds",
        "seg_coords",
        "verify_tables",
    )

    def adjacent_union_int(self, key) -> int:
        cell = self.cells[key]
        if cell.adj_int is not None and cell.neighbor_cells is None:
            cells = self.cells
            cell.neighbor_cells = [
                neighbor
                for neighbor_key in cell_and_adjacent_keys(key)
                if (neighbor := cells.get(neighbor_key)) is not None
            ]
        return super().adjacent_union_int(key)


class PackedBIGrid(BIGrid):
    """A :class:`BIGrid` carrying row indices into the packed matrices.

    ``shared_flat``/``group_flat`` are the oid-major concatenations of
    the per-object row groups (``shared_rows``/``group_rows`` are views
    into them); the bounding phases reduce over the flat arrays directly
    so no per-call gather is needed.
    """

    __slots__ = (
        "shared_rows",
        "group_rows",
        "shared_flat",
        "shared_counts",
        "shared_words",
        "group_flat",
        "group_counts",
    )


class NumpyKernel(KernelBackend):
    """Vectorized backend (numpy >= 2.0), bit-exact with the reference."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Cell keys
    # ------------------------------------------------------------------

    def cell_keys(self, points: np.ndarray, width: float) -> List[tuple]:
        # Same floor-and-truncate as the reference (shared helper), so the
        # keys agree bit-for-bit by construction.
        return compute_keys(points, width)

    # ------------------------------------------------------------------
    # GRID-MAPPING (Algorithm 3), batched
    # ------------------------------------------------------------------

    def build_bigrid(
        self,
        collection,
        r: float,
        backend: str = "ewah",
        point_filter=None,
        deadline=None,
        large_keys_provider=None,
    ) -> BIGrid:
        bitset_cls = bitset_class(backend)
        dimension = collection.dimension
        s_width = small_cell_width(r, dimension)
        l_width = large_cell_width(r)
        n = collection.n

        point_blocks: List[np.ndarray] = []
        index_blocks: List[np.ndarray] = []
        oid_blocks: List[np.ndarray] = []
        provided: Optional[List[np.ndarray]] = (
            [] if large_keys_provider is not None else None
        )
        mapped_points = 0
        for obj in collection:
            checkpoint(deadline, "grid_mapping")
            oid = obj.oid
            indices = _selected(obj.num_points, point_filter, oid)
            if len(indices) == 0:
                continue
            mapped_points += len(indices)
            point_blocks.append(obj.points[indices])
            index_blocks.append(indices.astype(np.int64))
            oid_blocks.append(np.full(len(indices), oid, dtype=np.int64))
            if provided is not None:
                # The session's LargeKeyCache must see the same per-object
                # calls (and hit/miss accounting) as the serial build.
                provided.append(
                    np.asarray(
                        large_keys_provider(oid, indices), dtype=np.int64
                    ).reshape(len(indices), dimension)
                )

        small_grid = PackedSmallGrid(s_width, dimension, bitset_cls)
        large_grid = PackedLargeGrid(l_width, dimension, bitset_cls)
        key_lists: List[set] = [set() for _ in range(n)]
        object_groups: List[Dict] = [{} for _ in range(n)]
        bigrid = PackedBIGrid(
            collection, r, small_grid, large_grid, key_lists, object_groups,
            mapped_points,
        )
        words = (n + 63) // 64 if n else 1
        empty_rows = np.empty(0, dtype=np.int64)
        bigrid.shared_rows = [empty_rows] * n
        bigrid.group_rows = [empty_rows] * n
        bigrid.shared_flat = empty_rows
        bigrid.shared_counts = np.zeros(n, dtype=np.int64)
        bigrid.shared_words = np.zeros((0, words), dtype=np.uint64)
        bigrid.group_flat = empty_rows
        bigrid.group_counts = np.zeros(n, dtype=np.int64)

        if mapped_points == 0:
            small_grid.packed = np.zeros((0, words), dtype=np.uint64)
            large_grid.packed = np.zeros((0, words), dtype=np.uint64)
            large_grid.codes = np.empty(0, dtype=np.int64)
            large_grid.strides = np.ones(dimension, dtype=np.int64)
            large_grid.row_cells = []
            large_grid.adj_words = None
            large_grid.seg_cell = np.empty(0, dtype=np.int64)
            large_grid.seg_oid = np.empty(0, dtype=np.int64)
            large_grid.seg_bounds = np.zeros(1, dtype=np.int64)
            large_grid.seg_coords = np.empty((0, dimension))
            large_grid.verify_tables = None
            return bigrid

        points = np.concatenate(point_blocks)
        point_idx = np.concatenate(index_blocks)
        oids = np.concatenate(oid_blocks)
        small_keys = np.floor(points / s_width).astype(np.int64)
        large_keys = (
            np.concatenate(provided)
            if provided is not None
            else np.floor(points / l_width).astype(np.int64)
        )

        encoded_small = encode_keys(small_keys)
        encoded_large = encode_keys(large_keys)
        if encoded_small is None or encoded_large is None:
            # Cell-index spread too wide for int64 codes: astronomically
            # sparse input, not worth a second encoding scheme.
            return PYTHON_KERNEL.build_bigrid(
                collection,
                r,
                backend=backend,
                point_filter=point_filter,
                deadline=deadline,
                large_keys_provider=large_keys_provider,
            )

        checkpoint(deadline, "grid_mapping")
        self._populate_small(
            bigrid, small_keys, encoded_small[0], oids, bitset_cls, n, words
        )
        checkpoint(deadline, "grid_mapping")
        self._populate_large(
            bigrid, large_keys, encoded_large, oids, point_idx, points,
            bitset_cls, n, words,
        )
        return bigrid

    @staticmethod
    def _populate_small(
        bigrid: PackedBIGrid,
        small_keys: np.ndarray,
        codes: np.ndarray,
        oids: np.ndarray,
        bitset_cls,
        n: int,
        words: int,
    ) -> None:
        """Rebuild the small grid + key lists from sorted (cell, oid) pairs."""
        small_grid = bigrid.small_grid
        uniq_codes, first_pos, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        cell_count = len(uniq_codes)
        cell_keys = [tuple(row) for row in small_keys[first_pos].tolist()]

        # Distinct (cell, oid) pairs, sorted: cell-major, oid ascending —
        # exactly the per-cell object order of the serial scan.
        pair_codes = np.unique(inverse.astype(np.int64) * n + oids)
        pair_cell = pair_codes // n
        pair_oid = pair_codes % n

        packed = np.zeros((cell_count, words), dtype=np.uint64)
        np.bitwise_or.at(
            packed,
            (pair_cell, pair_oid >> 6),
            np.left_shift(np.uint64(1), (pair_oid & 63).astype(np.uint64)),
        )
        small_grid.packed = packed

        rows = np.arange(cell_count)
        starts = np.searchsorted(pair_cell, rows)
        ends = np.searchsorted(pair_cell, rows, side="right")
        distinct = ends - starts
        first_oids = pair_oid[starts]
        last_oids = pair_oid[ends - 1]

        cells = small_grid.cells
        distinct_list = distinct.tolist()
        first_list = first_oids.tolist()
        last_list = last_oids.tolist()
        for row in range(cell_count):
            cell = LazyBitsetSmallCell(bitset_cls, packed, row)
            cell.distinct_objects = distinct_list[row]
            cell.first_oid = first_list[row]
            cell.last_oid = last_list[row]
            cells[cell_keys[row]] = cell

        # Key lists (o_i.L): every object present in a cell shared by >= 2
        # distinct objects records that cell's key (Algorithm 3, lines 7-10).
        shared_pair = (distinct >= 2)[pair_cell]
        shared_cells = pair_cell[shared_pair]
        shared_oids = pair_oid[shared_pair]
        key_lists = bigrid.key_lists
        for row, oid in zip(shared_cells.tolist(), shared_oids.tolist()):
            key_lists[oid].add(cell_keys[row])
        # Flat oid-major row groups (cells ascending within each object):
        # LOWER-BOUNDING reduces over this array directly, so the per-call
        # cost is one fancy index + one reduceat, no gather loop.
        order = np.argsort(shared_oids, kind="stable")
        flat = shared_cells[order]
        counts = np.bincount(shared_oids, minlength=n).astype(np.int64)
        bounds = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        bigrid.shared_flat = flat
        bigrid.shared_counts = counts
        # The packed words of those rows, gathered once at build time --
        # LOWER-BOUNDING reads them straight off, paying no cold fancy
        # index on its own clock.
        bigrid.shared_words = packed[flat]
        bounds_list = bounds.tolist()
        bigrid.shared_rows = [
            flat[bounds_list[oid] : bounds_list[oid + 1]] for oid in range(n)
        ]

    @staticmethod
    def _populate_large(
        bigrid: PackedBIGrid,
        large_keys: np.ndarray,
        encoded: Tuple[np.ndarray, np.ndarray],
        oids: np.ndarray,
        point_idx: np.ndarray,
        points: np.ndarray,
        bitset_cls,
        n: int,
        words: int,
    ) -> None:
        """Rebuild the large grid (postings + per-object groups) from sorted
        (cell, oid) segments; point order inside each posting list is the
        scan order (the stable sort preserves it)."""
        large_grid = bigrid.large_grid
        codes, strides = encoded
        uniq_codes, first_pos, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        cell_count = len(uniq_codes)
        cell_keys = [tuple(row) for row in large_keys[first_pos].tolist()]

        pair_codes = inverse.astype(np.int64) * n + oids
        order = np.argsort(pair_codes, kind="stable")
        sorted_pairs = pair_codes[order]
        sorted_points = point_idx[order]
        boundaries = np.flatnonzero(np.diff(sorted_pairs)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
        segment_pair = sorted_pairs[starts]
        segment_cell = segment_pair // n
        segment_oid = segment_pair % n
        #: Scan position of each (cell, oid) segment's first point — the
        #: first-occurrence order object_groups must present groups in.
        segment_first = order[starts]

        packed = np.zeros((cell_count, words), dtype=np.uint64)
        np.bitwise_or.at(
            packed,
            (segment_cell, segment_oid >> 6),
            np.left_shift(np.uint64(1), (segment_oid & 63).astype(np.uint64)),
        )

        # The flat segment view (and the lazy-cell backing) must exist
        # before any cell attribute resolves, so set the grid arrays first.
        large_grid.packed = packed
        large_grid.codes = uniq_codes
        large_grid.strides = strides
        large_grid.adj_words = None
        large_grid.seg_cell = segment_cell
        large_grid.seg_oid = segment_oid
        large_grid.seg_bounds = np.concatenate(
            (starts, np.asarray([len(sorted_points)], dtype=np.int64))
        )
        #: Posting-order coordinates: segment s's rows are its posting
        #: list's points, exactly what ``posting_points`` would gather.
        large_grid.seg_coords = points[order]
        large_grid.verify_tables = None

        cells = large_grid.cells
        row_cells: List[LargeGridCell] = []
        for row in range(cell_count):
            cell = LazyBitsetLargeCell(bitset_cls, large_grid, row)
            cells[cell_keys[row]] = cell
            row_cells.append(cell)
        large_grid.row_cells = row_cells

        cell_list = segment_cell.tolist()
        oid_list = segment_oid.tolist()
        points_list = sorted_points.tolist()
        bounds = starts.tolist()
        bounds.append(len(points_list))
        posting_lists: List[List[int]] = []
        for index in range(len(cell_list)):
            posting = points_list[bounds[index] : bounds[index + 1]]
            cell = row_cells[cell_list[index]]
            oid = oid_list[index]
            cell.postings[oid] = posting
            cell.last_oid = oid  # segments arrive oid-ascending per cell
            # postings and object_groups may share the list: both sides are
            # read-only after construction, and equality is what the serial
            # build guarantees.
            posting_lists.append(posting)

        # Per-object groups in first-occurrence scan order: one lexsort
        # (oid-major, then first scan position) replaces n per-object sorts.
        order2 = np.lexsort((segment_first, segment_oid))
        sorted_oid2 = segment_oid[order2]
        rows2 = segment_cell[order2]
        oid_range = np.arange(n)
        g_starts = np.searchsorted(sorted_oid2, oid_range)
        g_ends = np.searchsorted(sorted_oid2, oid_range, side="right")
        group_rows = bigrid.group_rows
        object_groups = bigrid.object_groups
        order2_list = order2.tolist()
        for oid, (g_start, g_end) in enumerate(
            zip(g_starts.tolist(), g_ends.tolist())
        ):
            if g_start == g_end:
                continue
            groups = object_groups[oid]
            for position in range(g_start, g_end):
                index = order2_list[position]
                groups[cell_keys[cell_list[index]]] = posting_lists[index]
            group_rows[oid] = rows2[g_start:g_end]
        bigrid.group_flat = rows2
        bigrid.group_counts = (g_ends - g_starts).astype(np.int64)

    # ------------------------------------------------------------------
    # LOWER-BOUNDING (Algorithm 4), packed
    # ------------------------------------------------------------------

    def lower_bounds(
        self, bigrid, keep_bitsets=False, stats=None, deadline=None,
        dispatch="auto",
    ):
        if not isinstance(bigrid, PackedBIGrid):
            return PYTHON_KERNEL.lower_bounds(
                bigrid, keep_bitsets=keep_bitsets, stats=stats, deadline=deadline
            )
        n = bigrid.collection.n
        counts = bigrid.shared_counts
        words_matrix = bigrid.shared_words
        total_rows = int(words_matrix.shape[0])
        bitset_cls = bigrid.small_grid.bitset_cls
        one_word = words_matrix.shape[1] == 1

        # Both paths are bit-identical (tests/test_lower_bound.py pins
        # them); ``dispatch`` only moves the size threshold to 0 or
        # infinity.  Forcing "seq" on a multi-word grid stays on the
        # reduceat path -- the sequential gather requires one-word rows.
        if total_rows == 0 or (
            one_word
            and dispatch != "vectorized"
            and (
                dispatch == "seq"
                or total_rows < LOWER_BOUND_DISPATCH_MIN_ROWS
            )
        ):
            # Tiny grids: fixed numpy dispatch overhead (flatnonzero,
            # cumsum, reduceat) exceeds the work.  Run the reference
            # algorithm -- sequential per-object int unions in the same
            # order -- directly over the pre-gathered packed words; this
            # is bit-identical and skips the lazy per-cell bitset
            # materialization that delegating to the python kernel would
            # trigger on a packed grid.
            return self._lower_bounds_seq(
                bigrid, counts, words_matrix, keep_bitsets, stats, deadline
            )

        # One reduceat over every object's rows at once: OR-unions and
        # popcounts for all n objects in two array passes.
        nonzero = np.flatnonzero(counts)
        offsets = np.zeros(len(nonzero), dtype=np.int64)
        offsets[1:] = np.cumsum(counts[nonzero])[:-1]
        unions = np.bitwise_or.reduceat(words_matrix, offsets, axis=0)
        cards = np.bitwise_count(unions).sum(axis=1).astype(np.int64).tolist()

        values: List[int] = []
        bitsets: Optional[List] = [] if keep_bitsets else None
        tau_max = 0
        position = 0
        counts_list = counts.tolist()
        for oid in range(n):
            checkpoint(deadline, "lower_bounding")
            if counts_list[oid] == 0:
                values.append(0)
                if bitsets is not None:
                    bitsets.append(None)
                continue
            cardinality = cards[position]
            lower = cardinality - 1 if cardinality else 0
            values.append(lower)
            if lower > tau_max:
                tau_max = lower
            if bitsets is not None:
                bitsets.append(
                    bitset_cls.from_int(_row_int(unions[position]))
                    if cardinality
                    else None
                )
            position += 1

        if stats is not None:
            stats.set_count("lower_or_operations", total_rows)
            stats.set_count("tau_max_low", tau_max)
        return LowerBoundResult(
            values=values, tau_max=tau_max, bitsets=bitsets,
            path="numpy-reduceat",
        )

    @staticmethod
    def _lower_bounds_seq(
        bigrid, counts, words_matrix, keep_bitsets, stats, deadline
    ):
        """Reference-order lower bounds over the packed rows (tiny grids).

        Same sequential per-object union the python backend performs,
        expressed as big-int ORs over the build-time word gather -- no
        per-call numpy dispatch, no lazy cell materialization.  Only used
        when every bitset fits one word (or there are no shared rows at
        all), so each row *is* its big-int value.
        """
        n = bigrid.collection.n
        bitset_cls = bigrid.small_grid.bitset_cls
        row_vals = words_matrix[:, 0].tolist() if words_matrix.size else []
        counts_list = counts.tolist()
        values: List[int] = []
        bitsets: Optional[List] = [] if keep_bitsets else None
        tau_max = 0
        position = 0
        for oid in range(n):
            checkpoint(deadline, "lower_bounding")
            count = counts_list[oid]
            if count == 0:
                values.append(0)
                if bitsets is not None:
                    bitsets.append(None)
                continue
            union = 0
            for value in row_vals[position : position + count]:
                union |= value
            position += count
            cardinality = union.bit_count()
            lower = cardinality - 1 if cardinality else 0
            values.append(lower)
            if lower > tau_max:
                tau_max = lower
            if bitsets is not None:
                bitsets.append(
                    bitset_cls.from_int(union) if cardinality else None
                )
        if stats is not None:
            stats.set_count("lower_or_operations", len(row_vals))
            stats.set_count("tau_max_low", tau_max)
        return LowerBoundResult(
            values=values, tau_max=tau_max, bitsets=bitsets, path="numpy-seq",
        )

    # ------------------------------------------------------------------
    # UPPER-BOUNDING (Algorithm 5), bulk adjacent unions
    # ------------------------------------------------------------------

    def upper_bounds(
        self, bigrid, tau_max_low, upper_masks=None, labeler=None, stats=None,
        deadline=None,
    ):
        if (
            upper_masks is not None
            or labeler is not None
            or not isinstance(bigrid, PackedBIGrid)
        ):
            # Labeling-1/2 (and mask filtering) depend on the serial scan
            # order; the contract demands delegation, not approximation.
            return PYTHON_KERNEL.upper_bounds(
                bigrid,
                tau_max_low,
                upper_masks=upper_masks,
                labeler=labeler,
                stats=stats,
                deadline=deadline,
            )
        large_grid = bigrid.large_grid
        packed = large_grid.packed
        codes = large_grid.codes
        cell_count = len(codes)
        n = bigrid.collection.n
        checkpoint(deadline, "upper_bounding")

        # b_adj for every cell at once: one searchsorted per neighbour
        # offset aligns each cell with that neighbour's packed row.  The
        # matrix stays on the grid; per-cell ``adj_int`` big ints resolve
        # lazily from its rows only if verification actually reads them.
        adjacency = large_grid.adj_words
        if adjacency is None:
            adjacency = packed.copy()
            if cell_count:
                strides = large_grid.strides
                for offset in neighbor_offsets(bigrid.collection.dimension):
                    delta = int(np.asarray(offset, dtype=np.int64) @ strides)
                    targets = codes + delta
                    positions = np.searchsorted(codes, targets)
                    positions[positions == cell_count] = 0
                    hit = codes[positions] == targets
                    if hit.any():
                        adjacency[hit] |= packed[positions[hit]]
            large_grid.adj_words = adjacency

        # Every cell holds at least one posting, so the reference pass
        # unions every cell it has not already memoized.
        fresh_unions = cell_count - large_grid.adj_computed
        large_grid.adj_computed = cell_count

        counts = bigrid.group_counts
        flat = bigrid.group_flat
        groups_processed = int(flat.shape[0])
        nonzero = np.flatnonzero(counts)
        cards: List[int] = []
        if len(nonzero):
            offsets = np.zeros(len(nonzero), dtype=np.int64)
            offsets[1:] = np.cumsum(counts[nonzero])[:-1]
            unions = np.bitwise_or.reduceat(adjacency[flat], offsets, axis=0)
            cards = np.bitwise_count(unions).sum(axis=1).astype(np.int64).tolist()

        values: List[int] = []
        candidates: List[Candidate] = []
        position = 0
        counts_list = counts.tolist()
        for oid in range(n):
            checkpoint(deadline, "upper_bounding")
            if counts_list[oid] == 0:
                upper = 0
            else:
                cardinality = cards[position]
                upper = cardinality - 1 if cardinality else 0
                position += 1
            values.append(upper)
            if upper >= tau_max_low:
                candidates.append((upper, oid))

        candidates.sort(key=lambda entry: (-entry[0], entry[1]))
        if stats is not None:
            stats.set_count("upper_groups_processed", groups_processed)
            stats.set_count("adj_unions_computed", fresh_unions)
            stats.set_count("candidates", len(candidates))
            stats.set_count("pruned_objects", bigrid.collection.n - len(candidates))
        return UpperBoundResult(candidates=candidates, values=values)

    # ------------------------------------------------------------------
    # VERIFICATION (Algorithm 6), batched per candidate
    # ------------------------------------------------------------------

    def verify_candidates(
        self,
        bigrid,
        candidates,
        r,
        k=1,
        initial_bitsets=None,
        verify_masks=None,
        labeler=None,
        stats=None,
        deadline=None,
    ):
        if not isinstance(bigrid, PackedBIGrid):
            return PYTHON_KERNEL.verify_candidates(
                bigrid,
                candidates,
                r,
                k=k,
                initial_bitsets=initial_bitsets,
                verify_masks=verify_masks,
                labeler=labeler,
                stats=stats,
                deadline=deadline,
            )
        counters = VerifyCounters()
        scorer = _BatchedVerifier(
            bigrid, r, initial_bitsets, verify_masks, labeler, counters, deadline
        )
        return best_first_verification(
            candidates,
            k,
            scorer.score,
            counters,
            stats=stats,
            deadline=deadline,
            path="numpy-fused" if scorer.fused else "numpy-batch",
        )

    # ------------------------------------------------------------------
    # Verification distance primitive, early-exit chunked (Corollary 1)
    # ------------------------------------------------------------------

    def any_within(
        self, candidate_points: np.ndarray, point: np.ndarray, r_squared: float
    ) -> bool:
        total = candidate_points.shape[0]
        if total <= DISTANCE_CHUNK:
            diff = candidate_points - point
            return bool(np.einsum("ij,ij->i", diff, diff).min() <= r_squared)
        for start in range(0, total, DISTANCE_CHUNK):
            block = candidate_points[start : start + DISTANCE_CHUNK] - point
            if np.einsum("ij,ij->i", block, block).min() <= r_squared:
                return True
        return False


def _ragged_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + counts[i])`` for all
    ``i``, without a python loop.  Every ``counts[i]`` must be >= 1."""
    ends = np.cumsum(counts)
    out = np.ones(int(ends[-1]), dtype=np.int64)
    out[0] = starts[0]
    if len(starts) > 1:
        out[ends[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(out)


class _BatchedVerifier:
    """Exact scorer over a packed BIGrid: block distances, reference order.

    ``score(oid)`` reproduces :func:`repro.core.verification._exact_score`
    bit-for-bit, but evaluates distances in bulk.  Per (candidate, cell)
    group it batches every unmasked candidate point against the *whole*
    ``3^d`` neighbourhood's posting coordinates — one einsum plus one
    ``np.minimum.reduceat`` yields the per-(point, posting) hit booleans —
    and then replays the reference's authoritative walk (dynamic pending
    set, per-cell early break, Labeling-3 marks, work counters) over the
    precomputed booleans.  The replay only ever *reads* hits the
    reference would also have computed: the pending set shrinks as
    ``confirmed`` grows, so the batch is a superset of the touched pairs,
    and each hit boolean is a pure function of the same float arithmetic
    (identical subtract/square/sum/min element order), hence identical.

    The per-cell neighbourhood spec (gathered coordinates, segment
    offsets, per-neighbour owner maps) is cached on the grid
    (``verify_tables``), so overlapping neighbourhoods across candidates
    are gathered once per query, not once per candidate.
    """

    __slots__ = (
        "bigrid",
        "collection",
        "large_grid",
        "r_squared",
        "initial_bitsets",
        "verify_masks",
        "labeler",
        "counters",
        "deadline",
        "tables",
        "fused",
    )

    def __init__(
        self,
        bigrid: PackedBIGrid,
        r: float,
        initial_bitsets,
        verify_masks,
        labeler,
        counters: VerifyCounters,
        deadline,
    ) -> None:
        self.bigrid = bigrid
        self.collection = bigrid.collection
        self.large_grid = bigrid.large_grid
        self.r_squared = r * r
        self.initial_bitsets = initial_bitsets
        self.verify_masks = verify_masks
        self.labeler = labeler
        self.counters = counters
        self.deadline = deadline
        self.tables = self._grid_tables()
        # The fused int-mask walk (``_score_fused``) covers the plain
        # regime only: no labels to mark, no masks to honor, no deadline
        # to checkpoint, bulk adjacency present, and every bitset in one
        # word so per-cell owner masks are machine ints.  Anything else
        # takes the general batched path below -- both are bit-exact.
        adj_words = self.large_grid.adj_words
        self.fused = (
            labeler is None
            and verify_masks is None
            and deadline is None
            and adj_words is not None
            and adj_words.shape[1] == 1
        )

    def _grid_tables(self) -> dict:
        grid = self.large_grid
        tables = grid.verify_tables
        if tables is None:
            offsets = neighbor_offsets(grid.dimension)
            deltas = np.zeros(1 + len(offsets), dtype=np.int64)
            for index, offset in enumerate(offsets):
                deltas[1 + index] = int(
                    np.asarray(offset, dtype=np.int64) @ grid.strides
                )
            cell_range = np.arange(len(grid.codes))
            tables = {
                # Self first, then ``neighbor_offsets`` product order —
                # the reference's ``cell_and_adjacent_keys`` walk.
                "deltas": deltas,
                "seg_start": np.searchsorted(grid.seg_cell, cell_range),
                "seg_end": np.searchsorted(
                    grid.seg_cell, cell_range, side="right"
                ),
                "seg_lengths": (
                    grid.seg_bounds[1:] - grid.seg_bounds[:-1]
                ).tolist(),
                "seg_oids": grid.seg_oid.tolist(),
                "owner_maps": {},
                "rows": {},
            }
            grid.verify_tables = tables
        return tables

    def _build_specs(self, rows: List[int]) -> dict:
        """Build (and cache) the neighbourhood specs for a candidate's cells.

        One spec per cell row: ``(coords, offs, cell_descs)`` — the
        posting coordinates of every segment in the ``3^d`` neighbourhood
        (neighbour-major, self cell first, then ``neighbor_offsets``
        product order — exactly the reference's ``neighbor_cells`` walk),
        the einsum reduce offset of each segment, and one
        ``(owner_map, col_base)`` descriptor per neighbour cell.
        ``owner_map`` maps owner oid -> *global* segment id (shared
        across specs, built once per cell); ``col_base + g`` converts a
        global id back into this spec's hit-row column.

        All missing rows are resolved in one vectorized pass (neighbour
        lookup, segment expansion, coordinate gather), so the per-row
        residue is a couple of array views; the ``cell_descs`` python
        loop itself is deferred until a point actually reads the spec
        (``_spec_descs``) — prefetched-but-skipped cells never pay it.
        Returns the spec cache.
        """
        tables = self.tables
        cache = tables["rows"]
        missing = [row for row in rows if row not in cache]
        if not missing:
            return cache
        grid = self.large_grid
        codes = grid.codes
        cell_count = len(codes)

        # Neighbour rows for every missing cell in one searchsorted.
        targets = (
            codes[np.asarray(missing, dtype=np.int64)][:, None]
            + tables["deltas"][None, :]
        ).ravel()
        positions = np.searchsorted(codes, targets)
        positions[positions == cell_count] = 0
        valid = codes[positions] == targets
        neighbors = positions[valid]
        # >= 1 everywhere: the self cell always exists, and every cell
        # holds >= 1 posting segment — the ragged expansions are total.
        neighbor_counts = valid.reshape(len(missing), -1).sum(axis=1)

        # Segment expansion: cells' segments are contiguous in seg space.
        cell_starts = tables["seg_start"][neighbors]
        cell_counts = tables["seg_end"][neighbors] - cell_starts
        seg_ids = _ragged_arange(cell_starts, cell_counts)
        seg_starts = grid.seg_bounds[seg_ids]
        seg_lens = grid.seg_bounds[seg_ids + 1] - seg_starts
        coords_all = grid.seg_coords[_ragged_arange(seg_starts, seg_lens)]
        seg_ends_local = np.cumsum(seg_lens)
        #: Each segment's first coordinate row within ``coords_all``.
        goffs = seg_ends_local - seg_lens

        # Row boundaries: cells per row -> segments per cell -> points.
        cell_hi = np.cumsum(neighbor_counts).tolist()
        seg_lo_per_cell = (np.cumsum(cell_counts) - cell_counts).tolist()
        seg_count = len(seg_ids)
        point_total = int(seg_ends_local[-1]) if seg_count else 0

        cell_lo = 0
        for index, row in enumerate(missing):
            hi = cell_hi[index]
            s_lo = seg_lo_per_cell[cell_lo]
            s_hi = seg_lo_per_cell[hi] if hi < len(seg_lo_per_cell) else seg_count
            p_lo = int(goffs[s_lo])
            p_hi = int(goffs[s_hi]) if s_hi < seg_count else point_total
            cache[row] = [
                coords_all[p_lo:p_hi],
                goffs[s_lo:s_hi] - p_lo,
                None,  # cell_descs, built on first read (_spec_descs)
                neighbors[cell_lo:hi],
                cell_starts[cell_lo:hi],
                cell_counts[cell_lo:hi],
            ]
            cell_lo = hi
        return cache

    def _spec_descs(self, spec: list) -> List[tuple]:
        """Materialize a spec's per-neighbour-cell descriptors (once)."""
        tables = self.tables
        owner_maps = tables["owner_maps"]
        seg_oids = tables["seg_oids"]
        cell_descs = []
        column = 0
        for target, s0, count in zip(
            spec[3].tolist(), spec[4].tolist(), spec[5].tolist()
        ):
            owner_map = owner_maps.get(target)
            if owner_map is None:
                owner_map = dict(
                    zip(seg_oids[s0 : s0 + count], range(s0, s0 + count))
                )
                owner_maps[target] = owner_map
            cell_descs.append((owner_map, column - s0))
            column += count
        spec[2] = cell_descs
        return cell_descs

    def _fused_tables(self) -> list:
        """Per-cell owner masks for the fused walk (one-word grids only).

        A large cell's owner mask is its packed bitset row itself --
        ``packed[cell, 0]`` ORs ``1 << oid`` over every owner with a
        posting in the cell -- so "which pending owners does this cell
        hold" is a single int AND against a build-time word.
        """
        tables = self.tables
        grid = self.large_grid
        tables["cmask"] = grid.packed[:, 0].tolist()
        tables["seg_start_list"] = tables["seg_start"].tolist()
        tables["seg_bounds_list"] = grid.seg_bounds.tolist()
        tables["neighbors"] = {}
        return tables["cmask"]

    def _build_neighborhoods(self, missing: List[int]) -> None:
        """Existing neighbour cells for candidate rows, batch-resolved.

        Same searchsorted geometry as :meth:`_build_specs`, minus the
        coordinate gather and owner maps: each row caches the list of
        neighbour rows that exist, self cell first then
        ``neighbor_offsets`` product order -- the reference's
        ``neighbor_cells`` walk order.
        """
        tables = self.tables
        grid = self.large_grid
        codes = grid.codes
        cell_count = len(codes)
        targets = (
            codes[np.asarray(missing, dtype=np.int64)][:, None]
            + tables["deltas"][None, :]
        ).ravel()
        positions = np.searchsorted(codes, targets)
        positions[positions == cell_count] = 0
        valid = codes[positions] == targets
        neighbor_list = positions[valid].tolist()
        bounds_list = np.cumsum(
            valid.reshape(len(missing), -1).sum(axis=1)
        ).tolist()
        cache = tables["neighbors"]
        low = 0
        for index, row in enumerate(missing):
            high = bounds_list[index]
            cache[row] = neighbor_list[low:high]
            low = high

    def _score_fused(self, oid: int) -> int:
        """``tau(o_i)`` via per-cell int masks (plain one-word regime).

        Replays the reference walk -- groups in order, per-point pending
        recompute, per-cell snapshot intersection, per-owner distance
        check with the reference's exact float expression -- but resolves
        every set operation as machine-int bitwise ops against the
        precomputed cell masks, and skips whole groups whose
        neighbourhood holds no pending owner (their walk touches no
        counter by construction: the pending set only shrinks as
        ``confirmed`` grows, so a neighbourhood disjoint from the
        group-entry pending set stays disjoint for every point).
        """
        grid = self.large_grid
        counters = self.counters
        points = self.collection[oid].points
        r_squared = self.r_squared

        confirmed = 0
        if self.initial_bitsets is not None:
            seed = self.initial_bitsets(oid)
            if seed is not None:
                confirmed = seed.to_int()
        confirmed |= 1 << oid

        tables = self.tables
        cmask = tables.get("cmask")
        if cmask is None:
            cmask = self._fused_tables()
        neighborhoods = tables["neighbors"]
        seg_oids = tables["seg_oids"]
        seg_lengths = tables["seg_lengths"]
        seg_start_list = tables["seg_start_list"]
        seg_bounds = tables["seg_bounds_list"]
        seg_coords = grid.seg_coords
        adj_ints = tables.get("adj_ints")
        if adj_ints is None:
            adj_ints = grid.adj_words[:, 0].tolist()
            tables["adj_ints"] = adj_ints
        adj_np = tables.get("adj_np")
        if adj_np is None:
            adj_np = tables["adj_np"] = grid.adj_words[:, 0]

        # Seed-level screen, one vectorized AND for every group at once:
        # a group whose adjacency holds nothing beyond the seed confirmed
        # set can never check or confirm anything (``confirmed`` only
        # grows), so the walk skips it on a precomputed flag.  Only the
        # surviving rows get a neighbourhood built.
        group_rows_arr = self.bigrid.group_rows[oid]
        rows_list = group_rows_arr.tolist()
        flags = (
            adj_np[group_rows_arr]
            & np.uint64(~confirmed & 0xFFFFFFFFFFFFFFFF)
        ).astype(bool).tolist()
        missing = [
            row
            for row, flag in zip(rows_list, flags)
            if flag and row not in neighborhoods
        ]
        if missing:
            self._build_neighborhoods(missing)

        posting_checks = 0
        distance_rows = 0
        einsum = _c_einsum
        reduce_min = np.minimum.reduce
        for flag, point_indices, row in zip(
            flags, self.bigrid.object_groups[oid].values(), rows_list
        ):
            if not flag:
                continue
            adj = adj_ints[row]
            pending = adj & ~confirmed
            if not pending:
                continue
            # Cells that can intersect the group-entry pending set, in
            # the reference's neighbour walk order; later points' pending
            # sets are subsets, so skipped cells never match them either.
            active = [
                cell for cell in neighborhoods[row] if cmask[cell] & pending
            ]
            for point_index in point_indices:
                remaining = adj & ~confirmed
                if not remaining:
                    continue
                point = None
                for cell in active:
                    # Snapshot at cell entry, like the reference's
                    # ``remaining.intersection(cell.postings)``: owners
                    # confirmed mid-cell stay in this cell's found set.
                    found = remaining & cmask[cell]
                    if not found:
                        continue
                    if point is None:
                        point = points[point_index]
                    base = seg_start_list[cell]
                    while found:
                        bit = found & -found
                        found ^= bit
                        owner = bit.bit_length() - 1
                        posting_checks += 1
                        segment = base
                        while seg_oids[segment] != owner:
                            segment += 1
                        length = seg_lengths[segment]
                        distance_rows += length
                        low = seg_bounds[segment]
                        diff = seg_coords[low : low + length] - point
                        if (
                            reduce_min(einsum("ij,ij->i", diff, diff))
                            <= r_squared
                        ):
                            confirmed |= bit
                            remaining &= ~bit
                    if not remaining:
                        break

        counters.posting_checks += posting_checks
        counters.distance_rows += distance_rows
        return confirmed.bit_count() - 1

    def score(self, oid: int) -> int:
        """``tau(o_i)`` exactly, matching ``_exact_score`` bit-for-bit."""
        if self.fused:
            return self._score_fused(oid)
        bigrid = self.bigrid
        large_grid = self.large_grid
        counters = self.counters
        labeler = self.labeler
        points = self.collection[oid].points
        r_squared = self.r_squared

        confirmed = 0
        if self.initial_bitsets is not None:
            seed = self.initial_bitsets(oid)
            if seed is not None:
                confirmed = seed.to_int()
        confirmed |= 1 << oid

        mask = (
            self.verify_masks(oid).tolist()
            if self.verify_masks is not None
            else None
        )

        deadline = self.deadline
        row_cells = large_grid.row_cells
        group_rows = bigrid.group_rows[oid].tolist()
        tables = self.tables
        specs = tables["rows"]
        seg_lengths = tables["seg_lengths"]
        adj_words = large_grid.adj_words
        adj_ints = tables.get("adj_ints")
        if adj_ints is None and adj_words is not None and adj_words.shape[1] == 1:
            # One-word grids (n <= 64): converting every cell's adjacent
            # union at once is cheaper than the per-cell lazy conversion.
            adj_ints = adj_words[:, 0].tolist()
            tables["adj_ints"] = adj_ints

        position = -1
        for (key, point_indices), row in zip(
            bigrid.object_groups[oid].items(), group_rows
        ):
            position += 1
            if deadline is not None:
                # checkpoint() is a no-op without a deadline; skipping the
                # call entirely keeps clock-read parity with the reference
                # (neither side reads the clock when there is none).
                checkpoint(deadline, "verification")
            if mask is None:
                unmasked = point_indices
            else:
                unmasked = [
                    point_index
                    for point_index in point_indices
                    if mask[point_index]
                ]
                counters.points_skipped += len(point_indices) - len(unmasked)
            if not unmasked:
                continue
            # Adjacency resolves exactly as in the reference: from the
            # bulk matrix when upper-bounding produced one, via the
            # on-demand dictionary walk otherwise (label runs delegate
            # upper-bounding, so some cells are untouched).
            if adj_ints is not None:
                adj = adj_ints[row]
            else:
                adj = row_cells[row].adj_int
                if adj is None:
                    adj = large_grid.adjacent_union_int(key)
            pending = adj & ~confirmed
            if not pending:
                # No point in this group can confirm anything new (the
                # pending set only shrinks as ``confirmed`` grows).
                if labeler is not None:
                    for point_index in unmasked:
                        labeler.mark_verify_skippable(oid, (point_index,))
                continue

            spec = specs.get(row)
            if spec is None:
                # First miss: batch-build this row together with every
                # still-unvisited row that can need distance work under
                # the *current* confirmed set.  ``confirmed`` only grows,
                # so rows screened out here stay skippable forever and
                # their specs would never be read; rows that pass are a
                # (tight) superset of the reads.  The screen uses only
                # already-materialized adjacency — no
                # ``adjacent_union_int`` calls — so the reference's
                # memoization order is untouched; delegated upper-bounding
                # runs (no bulk matrix) build one row at a time.
                if adj_ints is not None:
                    need = [row] + [
                        later
                        for later in group_rows[position + 1 :]
                        if later not in specs and adj_ints[later] & ~confirmed
                    ]
                elif adj_words is not None:
                    need = [row] + [
                        later
                        for later in group_rows[position + 1 :]
                        if later not in specs
                        and row_cells[later].adj_int & ~confirmed
                    ]
                else:
                    need = [row]
                spec = self._build_specs(need)[row]
            coords = spec[0]
            offs = spec[1]
            cell_descs = spec[2]
            if cell_descs is None:
                cell_descs = self._spec_descs(spec)
            if len(unmasked) == 1:
                # Same subtract/square/sum/min element order as the batch
                # (and the reference), minus the broadcast setup.
                diff = coords - points[unmasked[0]]
                squared = np.einsum("rd,rd->r", diff, diff)
                hits = [
                    (np.minimum.reduceat(squared, offs) <= r_squared).tolist()
                ]
            else:
                block = points[np.asarray(unmasked, dtype=np.int64)]
                diff = coords[None, :, :] - block[:, None, :]
                squared = np.einsum("prd,prd->pr", diff, diff)
                hits = (
                    np.minimum.reduceat(squared, offs, axis=1) <= r_squared
                ).tolist()

            # One live pending set for the whole group: discarding a
            # confirmed owner keeps it identical to the reference's
            # per-point ``adj & ~confirmed`` recomputation.
            pending_set = bits_of(pending)
            for batch_row, point_index in enumerate(unmasked):
                if not pending_set:
                    if labeler is not None:
                        labeler.mark_verify_skippable(oid, (point_index,))
                    continue
                hit_row = hits[batch_row]
                for owner_map, col_base in cell_descs:
                    # Same snapshot the reference takes per cell
                    # (``remaining.intersection(cell.postings)``); owners
                    # are unique per cell, so within-cell order cannot
                    # change what gets confirmed or counted.
                    found = pending_set.intersection(owner_map)
                    if found:
                        counters.posting_checks += len(found)
                        for owner in found:
                            segment = owner_map[owner]
                            counters.distance_rows += seg_lengths[segment]
                            if hit_row[col_base + segment]:
                                confirmed |= 1 << owner
                                pending_set.discard(owner)
                    if not pending_set:
                        break

        return confirmed.bit_count() - 1


def _selected(num_points: int, point_filter, oid: int) -> np.ndarray:
    """Point indices surviving the label filter (Lemma 3), as in the
    reference build."""
    if point_filter is None:
        return np.arange(num_points)
    mask = point_filter(oid)
    if mask is None:
        return np.arange(num_points)
    return np.nonzero(mask)[0]


#: The shared vectorized instance.
NUMPY_KERNEL = NumpyKernel()
