"""The ``python`` kernel: the original per-point code paths, kept as the
reference oracle.

Every operation delegates to the module that owned it before the kernel
layer existed (``BIGrid.build``, ``compute_lower_bounds``,
``compute_upper_bounds``, and verification's einsum distance check), so
this backend *is* the pre-kernel behavior — the conformance suite holds
every other backend to it bit-for-bit.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core import verification
from repro.core.lower_bound import compute_lower_bounds
from repro.core.upper_bound import compute_upper_bounds
from repro.grid.bigrid import BIGrid
from repro.grid.keys import compute_keys
from repro.kernels.base import KernelBackend


class PythonKernel(KernelBackend):
    """Reference backend: Algorithms 3-6 exactly as originally written."""

    name = "python"

    def cell_keys(self, points: np.ndarray, width: float) -> List[tuple]:
        return compute_keys(points, width)

    def build_bigrid(
        self,
        collection,
        r: float,
        backend: str = "ewah",
        point_filter=None,
        deadline=None,
        large_keys_provider=None,
    ) -> BIGrid:
        return BIGrid.build(
            collection,
            r,
            backend=backend,
            point_filter=point_filter,
            deadline=deadline,
            large_keys_provider=large_keys_provider,
        )

    def lower_bounds(
        self, bigrid, keep_bitsets=False, stats=None, deadline=None,
        dispatch="auto",
    ):
        # The reference has a single path; ``dispatch`` is a no-op here.
        return compute_lower_bounds(
            bigrid, keep_bitsets=keep_bitsets, stats=stats, deadline=deadline
        )

    def upper_bounds(
        self, bigrid, tau_max_low, upper_masks=None, labeler=None, stats=None,
        deadline=None,
    ):
        return compute_upper_bounds(
            bigrid,
            tau_max_low,
            upper_masks=upper_masks,
            labeler=labeler,
            stats=stats,
            deadline=deadline,
        )

    def verify_candidates(
        self,
        bigrid,
        candidates,
        r,
        k=1,
        initial_bitsets=None,
        verify_masks=None,
        labeler=None,
        stats=None,
        deadline=None,
    ):
        return verification.verify_candidates(
            bigrid,
            candidates,
            r,
            k=k,
            initial_bitsets=initial_bitsets,
            verify_masks=verify_masks,
            labeler=labeler,
            stats=stats,
            deadline=deadline,
            kernel=None,
        )

    def any_within(
        self, candidate_points: np.ndarray, point: np.ndarray, r_squared: float
    ) -> bool:
        diff = candidate_points - point
        return bool(np.einsum("ij,ij->i", diff, diff).min() <= r_squared)


#: The shared reference instance (kernels are stateless; one is enough).
PYTHON_KERNEL = PythonKernel()
