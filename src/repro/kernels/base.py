"""The compute-kernel contract behind the four query phases.

The phase pipeline (PR 4) gave every engine variant one seam per phase;
this module names the *computational* half of that seam.  A
:class:`KernelBackend` implements the hot inner loops of Algorithms 3-6
— cell-key computation, BIGrid construction, lower-bound counting,
adjacent-union upper bounding, and the squared-distance primitive of
verification — while the stages keep owning orchestration (tracing,
faults, deadlines, caches, labels).

Backends are *interchangeable bit-for-bit*: for identical inputs every
operation must produce identical keys, identical bound values, identical
candidate sets, identical scores, and identical work counters.  The
``python`` backend (:mod:`repro.kernels.python_backend`) is the reference
oracle — it delegates to the original per-point implementations — and
``tests/test_kernel_conformance.py`` holds every other backend to it on
randomized workloads.

Operations that a backend cannot accelerate for a given input (e.g. the
label-producing upper-bounding pass, whose Labeling-1/2 bookkeeping
depends on the serial scan order) must *delegate to the reference
implementation*, never approximate it.  ``docs/kernels.md`` spells out
the full contract and how to add a backend.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class KernelBackend:
    """One implementation of the hot phase computations.

    All methods mirror the reference signatures in ``repro.grid.bigrid``,
    ``repro.core.lower_bound`` and ``repro.core.upper_bound``; see those
    modules for parameter semantics.  Results must be bit-exact across
    backends (see the module docstring).
    """

    #: Registry name (``"python"``, ``"numpy"``, ...).
    name: str = "abstract"

    def cell_keys(self, points: np.ndarray, width: float) -> List[tuple]:
        """Cell keys ``floor(coordinate / width)`` for every point row."""
        raise NotImplementedError

    def build_bigrid(
        self,
        collection,
        r: float,
        backend: str = "ewah",
        point_filter=None,
        deadline=None,
        large_keys_provider=None,
    ):
        """GRID-MAPPING (Algorithm 3): build the BIGrid for one query."""
        raise NotImplementedError

    def lower_bounds(
        self,
        bigrid,
        keep_bitsets: bool = False,
        stats=None,
        deadline=None,
        dispatch: str = "auto",
    ):
        """LOWER-BOUNDING (Algorithm 4) over the key lists ``o_i.L``.

        ``dispatch`` selects between bit-identical implementations where
        a backend has several (``"auto"`` keeps the backend's measured
        size dispatch; ``"seq"`` / ``"vectorized"`` force a side — the
        planner's knob).  Backends with a single path ignore it; forcing
        a side a backend cannot take for the given input falls back to
        the path it can, never to different results.
        """
        raise NotImplementedError

    def upper_bounds(
        self,
        bigrid,
        tau_max_low: int,
        upper_masks=None,
        labeler=None,
        stats=None,
        deadline=None,
    ):
        """UPPER-BOUNDING + pruning (Algorithm 5) over ``P_{i,K}``."""
        raise NotImplementedError

    def verify_candidates(
        self,
        bigrid,
        candidates,
        r: float,
        k: int = 1,
        initial_bitsets=None,
        verify_masks=None,
        labeler=None,
        stats=None,
        deadline=None,
    ):
        """VERIFICATION (Algorithm 6 / top-k): best-first exact scoring.

        Dequeues ``candidates`` (``(upper, oid)`` pairs, already sorted by
        descending upper bound) and computes exact scores until the next
        upper bound cannot beat the k-th best exact score.  Backends must
        preserve the reference semantics *exactly*: the early-termination
        threshold, the per-candidate deadline check and per-group
        checkpoint order, the Labeling-3 marks, and the work counters
        (``verified_objects``, ``distance_rows``, ``posting_checks``,
        ``verify_points_skipped``) must all match the reference oracle
        bit-for-bit.  Returns a
        :class:`repro.core.verification.VerificationResult` whose ``path``
        names the implementation that ran.
        """
        raise NotImplementedError

    def any_within(
        self, candidate_points: np.ndarray, point: np.ndarray, r_squared: float
    ) -> bool:
        """Whether any row of ``candidate_points`` is within ``sqrt(r_squared)``
        of ``point`` (the verification distance primitive, Corollary 1's
        one-pair-suffices check)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
