"""Cooperative deadlines for query execution.

A :class:`Deadline` is a small budget object threaded through the pipeline:
phases call :meth:`Deadline.check` at their boundaries and inside their
per-object / per-candidate loops.  Checks are cooperative — nothing is
interrupted preemptively — which keeps the engines single-threaded and
deterministic while still bounding tail latency:

* during grid mapping, lower-bounding, and upper-bounding an expiry raises
  :class:`~repro.errors.QueryTimeout` (no useful partial answer exists yet);
* during verification the engine instead returns an *anytime*
  :class:`~repro.core.query.MIOResult` with ``exact=False`` whose score is a
  verified lower bound on the optimum (Corollary 1 keeps every intermediate
  best-first answer correct as a bound).

The clock is injectable so tests can drive expiry deterministically
(:class:`ManualClock`) instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import InvalidQueryError, QueryTimeout

Clock = Callable[[], float]


class ManualClock:
    """A deterministic clock for tests: advances only when told to.

    ``step`` makes every reading advance time by that amount, so a
    ``Deadline(budget, clock=ManualClock(step=1.0))`` expires after exactly
    ``budget`` checks regardless of real elapsed time.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step
        return reading

    def advance(self, seconds: float) -> None:
        """Move time forward explicitly."""
        self.now += seconds


class Deadline:
    """A monotonic time budget for one query.

    Construct directly with a budget in seconds, or through
    :meth:`from_timeout_ms` (which maps ``None`` to "no deadline" so callers
    can thread an optional flag straight through).
    """

    __slots__ = ("budget", "_clock", "_started", "_expires")

    def __init__(self, budget_seconds: float, clock: Clock = time.monotonic) -> None:
        if budget_seconds < 0:
            raise InvalidQueryError("a deadline budget must be >= 0 seconds")
        self.budget = float(budget_seconds)
        self._clock = clock
        self._started = clock()
        self._expires = self._started + self.budget

    @classmethod
    def from_timeout_ms(
        cls, timeout_ms: Optional[float], clock: Clock = time.monotonic
    ) -> Optional["Deadline"]:
        """A deadline for ``timeout_ms`` milliseconds, or None for no limit."""
        if timeout_ms is None:
            return None
        return cls(timeout_ms / 1000.0, clock)

    def elapsed(self) -> float:
        """Seconds consumed so far."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left before expiry (may be negative once expired)."""
        return self._expires - self._clock()

    def remaining_ms(self) -> float:
        """Milliseconds left before expiry, clamped at 0.0 once expired.

        The re-budgeting helper for layered callers: a service that
        accepted a request with an end-to-end budget hands the *same*
        deadline (or ``remaining_ms()`` as a fresh ``timeout_ms``) to
        :class:`~repro.session.QuerySession`, so time spent queued before
        the pipeline starts is charged to the request, not forgotten.
        """
        return max(0.0, self.remaining() * 1000.0)

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._clock() >= self._expires

    def check(self, phase: str) -> None:
        """Raise :class:`QueryTimeout` if the budget has run out.

        ``phase`` names the pipeline phase performing the check; it is
        carried on the exception so callers (and the CLI) can report where
        the query ran out of time.
        """
        now = self._clock()
        if now >= self._expires:
            # Imported here so the non-expired fast path -- called inside
            # per-object loops -- stays a clock read and one comparison.
            from repro.obs import metrics as obs_metrics

            obs_metrics.counter(
                "repro_deadline_expirations_total",
                "Query deadlines that expired, by pipeline phase",
            ).inc(phase=phase)
            raise QueryTimeout(
                f"query deadline of {self.budget:.3f}s expired during {phase} "
                f"({now - self._started:.3f}s elapsed)",
                phase=phase,
                elapsed=now - self._started,
            )


def checkpoint(deadline: Optional[Deadline], phase: str) -> None:
    """Check an *optional* deadline: the common call site in phase loops."""
    if deadline is not None:
        deadline.check(phase)
