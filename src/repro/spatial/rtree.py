"""A bulk-loaded R-tree over axis-aligned boxes (STR packing).

Section II-B of the paper dismisses MBR-based indices for MIO processing:
arbors and trajectories produce "uselessly large rectangles with large
empty spaces".  To *test* that claim rather than assume it, this module
provides a textbook R-tree -- Sort-Tile-Recursive bulk loading, hierarchy
of minimum bounding boxes, within-distance box queries -- and
:class:`repro.baselines.rtree_nl.RTreeNestedLoop` builds the MIO baseline
on top of it.  The ablation benchmark measures exactly how little the MBR
filter prunes on stringy data versus compact data.

Works for 2-D and 3-D boxes; distances are Euclidean box gaps.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

Box = Tuple[np.ndarray, np.ndarray]

#: Default node fan-out.
_MAX_ENTRIES = 8


class _Node:
    """One R-tree node: a bounding box over children or leaf items."""

    __slots__ = ("lo", "hi", "children", "items")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        children: Optional[List["_Node"]],
        items: Optional[List[int]],
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.children = children
        self.items = items

    @property
    def is_leaf(self) -> bool:
        return self.items is not None


class RTree:
    """Static R-tree over item boxes, built with Sort-Tile-Recursive packing.

    STR sorts boxes by their center's first axis, slices the sequence into
    vertical tiles, sorts each tile by the next axis, and so on, then packs
    consecutive runs of ``max_entries`` boxes into leaves; the procedure
    recurses over the leaf boxes until a single root remains.
    """

    def __init__(self, boxes: Sequence[Box], max_entries: int = _MAX_ENTRIES) -> None:
        if not boxes:
            raise ValueError("an R-tree needs at least one box")
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.max_entries = max_entries
        self.dimension = len(boxes[0][0])
        lows = np.asarray([lo for lo, _ in boxes], dtype=np.float64)
        highs = np.asarray([hi for _, hi in boxes], dtype=np.float64)
        if np.any(lows > highs):
            raise ValueError("box low corners must not exceed high corners")
        self._lows = lows
        self._highs = highs
        leaves = self._pack_leaves(lows, highs)
        self.root = self._build_upward(leaves)
        self.size = len(boxes)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _pack_leaves(self, lows: np.ndarray, highs: np.ndarray) -> List[_Node]:
        centers = (lows + highs) / 2.0
        order = self._str_order(centers, np.arange(len(lows)))
        leaves = []
        for start in range(0, len(order), self.max_entries):
            chunk = order[start:start + self.max_entries]
            leaves.append(
                _Node(
                    lows[chunk].min(axis=0),
                    highs[chunk].max(axis=0),
                    None,
                    [int(i) for i in chunk],
                )
            )
        return leaves

    def _str_order(self, centers: np.ndarray, indices: np.ndarray, axis: int = 0) -> np.ndarray:
        """Recursive STR tiling: returns item indices in packing order."""
        if axis >= self.dimension - 1 or len(indices) <= self.max_entries:
            return indices[np.argsort(centers[indices, axis], kind="stable")]
        ordered = indices[np.argsort(centers[indices, axis], kind="stable")]
        n_leaves = math.ceil(len(ordered) / self.max_entries)
        n_slabs = math.ceil(n_leaves ** (1.0 / (self.dimension - axis)))
        slab_size = math.ceil(len(ordered) / n_slabs)
        pieces = [
            self._str_order(centers, ordered[start:start + slab_size], axis + 1)
            for start in range(0, len(ordered), slab_size)
        ]
        return np.concatenate(pieces)

    def _build_upward(self, nodes: List[_Node]) -> _Node:
        while len(nodes) > 1:
            centers = np.asarray([(node.lo + node.hi) / 2.0 for node in nodes])
            order = self._str_order(centers, np.arange(len(nodes)))
            parents = []
            for start in range(0, len(order), self.max_entries):
                chunk = [nodes[int(i)] for i in order[start:start + self.max_entries]]
                parents.append(
                    _Node(
                        np.min([node.lo for node in chunk], axis=0),
                        np.max([node.hi for node in chunk], axis=0),
                        chunk,
                        None,
                    )
                )
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query_within(self, lo: np.ndarray, hi: np.ndarray, r: float = 0.0) -> Iterator[int]:
        """Item ids whose box gap to ``[lo, hi]`` is at most ``r``.

        ``r = 0`` is plain box intersection.  This is the candidate
        generation an MBR-based spatial join performs.
        """
        r_squared = r * r
        stack = [self.root]
        while stack:
            node = stack.pop()
            if _gap_squared(node.lo, node.hi, lo, hi) > r_squared:
                continue
            if node.is_leaf:
                for item in node.items:
                    gap = _gap_squared(self._lows[item], self._highs[item], lo, hi)
                    if gap <= r_squared:
                        yield item
            else:
                stack.extend(node.children)

    def count_within(self, lo: np.ndarray, hi: np.ndarray, r: float = 0.0) -> int:
        """Number of candidate items for a within-``r`` box query."""
        return sum(1 for _ in self.query_within(lo, hi, r))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        levels = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on violation."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.items, "leaves must hold at least one item"
                assert len(node.items) <= self.max_entries
            else:
                assert node.children, "inner nodes must have children"
                assert len(node.children) <= self.max_entries
                for child in node.children:
                    assert np.all(child.lo >= node.lo - 1e-12)
                    assert np.all(child.hi <= node.hi + 1e-12)
                stack.extend(node.children)

    def memory_bytes(self) -> int:
        """Boxes (two corners) plus child/item references per node."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 2 * 8 * self.dimension + 8
            if node.is_leaf:
                total += 8 * len(node.items)
            else:
                total += 8 * len(node.children)
                stack.extend(node.children)
        return total


def _gap_squared(lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray) -> float:
    gap = np.maximum(0.0, np.maximum(lo_a - hi_b, lo_b - hi_a))
    return float(np.dot(gap, gap))
