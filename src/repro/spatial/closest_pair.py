"""Closest point pair between two point sets.

The theoretical algorithm of Theorem 1 needs, for every pair of objects,
the distance of their closest point pair: if that distance is within ``r``
the objects interact, otherwise they do not.  The kd-tree implementation
queries the tree of the larger set with every point of the smaller set,
pruning with the best distance so far -- the O(|P_i| log |P_j|)-style
approach the paper cites [20].
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import min_pair_distance
from repro.spatial.kdtree import KDTree

#: Below this size a vectorized full distance matrix beats tree traversal.
_BRUTE_FORCE_LIMIT = 96


def closest_pair_distance(points_a: np.ndarray, points_b: np.ndarray) -> float:
    """Distance of the closest pair ``(p, p')`` with ``p`` in A, ``p'`` in B."""
    if len(points_a) == 0 or len(points_b) == 0:
        return float("inf")
    if min(len(points_a), len(points_b)) <= _BRUTE_FORCE_LIMIT:
        return min_pair_distance(points_a, points_b)
    if len(points_a) > len(points_b):
        points_a, points_b = points_b, points_a
    tree = KDTree(points_b)
    best = float("inf")
    for point in points_a:
        distance = tree.nearest(point)
        if distance < best:
            best = distance
            if best == 0.0:
                break
    return best


def closest_pair_distance_with_tree(points: np.ndarray, tree: KDTree) -> float:
    """Same as above with a pre-built tree for the second set (reused across pairs)."""
    best = float("inf")
    for point in points:
        distance = tree.nearest(point)
        if distance < best:
            best = distance
            if best == 0.0:
                break
    return best
