"""A compact kd-tree over a numpy point array.

Supports the two queries the baselines need:

* ``any_within(q, r)``  -- does any indexed point lie within ``r`` of ``q``?
  (early-exit containment test used by the kd-tree NL variant, footnote 9)
* ``nearest(q)``        -- nearest-neighbour distance, used to compute the
  closest point pair between two objects (Theorem 1 pre-processing).

The tree is built with median splits on the axis of largest spread and
stored in flat arrays (no per-node Python objects); leaves hold small point
buckets that are scanned vectorized.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_LEAF_SIZE = 16


class KDTree:
    """Static kd-tree over the rows of a (m, d) float array."""

    __slots__ = ("points", "_order", "_split_axis", "_split_value", "_children", "_ranges")

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("KDTree requires a non-empty (m, d) array")
        self.points = points
        #: Permutation of row indices; each node owns a contiguous slice.
        self._order = np.arange(len(points))
        self._split_axis: List[int] = []
        self._split_value: List[float] = []
        #: (left_child, right_child) per node; -1 marks a leaf.
        self._children: List[Tuple[int, int]] = []
        #: (start, stop) slice of ``_order`` per node.
        self._ranges: List[Tuple[int, int]] = []
        self._build(0, len(points), leaf_size)

    def _build(self, start: int, stop: int, leaf_size: int) -> int:
        node = len(self._ranges)
        self._ranges.append((start, stop))
        self._split_axis.append(-1)
        self._split_value.append(0.0)
        self._children.append((-1, -1))
        if stop - start <= leaf_size:
            return node
        block = self.points[self._order[start:stop]]
        spreads = block.max(axis=0) - block.min(axis=0)
        axis = int(np.argmax(spreads))
        if spreads[axis] == 0.0:
            return node  # all points coincide: keep as leaf
        middle = (stop - start) // 2
        segment = self._order[start:stop]
        keys = self.points[segment, axis]
        partition = np.argpartition(keys, middle)
        self._order[start:stop] = segment[partition]
        split_value = float(self.points[self._order[start + middle], axis])
        self._split_axis[node] = axis
        self._split_value[node] = split_value
        left = self._build(start, start + middle, leaf_size)
        right = self._build(start + middle, stop, leaf_size)
        self._children[node] = (left, right)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def any_within(self, query: np.ndarray, r: float) -> bool:
        """Whether some indexed point lies within distance ``r`` of ``query``."""
        query = np.asarray(query, dtype=np.float64)
        r_squared = r * r
        stack = [(0, 0.0)]
        while stack:
            node, gap_squared = stack.pop()
            if gap_squared > r_squared:
                continue
            left, right = self._children[node]
            if left < 0:
                start, stop = self._ranges[node]
                block = self.points[self._order[start:stop]]
                diff = block - query
                if np.min(np.einsum("ij,ij->i", diff, diff)) <= r_squared:
                    return True
                continue
            axis = self._split_axis[node]
            delta = float(query[axis]) - self._split_value[node]
            near, far = (left, right) if delta < 0 else (right, left)
            stack.append((far, max(gap_squared, delta * delta)))
            stack.append((near, gap_squared))
        return False

    def nearest(self, query: np.ndarray) -> float:
        """Distance from ``query`` to its nearest indexed point."""
        query = np.asarray(query, dtype=np.float64)
        best = np.inf
        stack = [(0, 0.0)]
        while stack:
            node, gap_squared = stack.pop()
            if gap_squared >= best:
                continue
            left, right = self._children[node]
            if left < 0:
                start, stop = self._ranges[node]
                block = self.points[self._order[start:stop]]
                diff = block - query
                leaf_best = float(np.min(np.einsum("ij,ij->i", diff, diff)))
                if leaf_best < best:
                    best = leaf_best
                continue
            axis = self._split_axis[node]
            delta = float(query[axis]) - self._split_value[node]
            near, far = (left, right) if delta < 0 else (right, left)
            stack.append((far, max(gap_squared, delta * delta)))
            stack.append((near, gap_squared))
        return float(np.sqrt(best))

    def count_within(self, query: np.ndarray, r: float) -> int:
        """Number of indexed points within distance ``r`` of ``query``."""
        query = np.asarray(query, dtype=np.float64)
        r_squared = r * r
        count = 0
        stack = [(0, 0.0)]
        while stack:
            node, gap_squared = stack.pop()
            if gap_squared > r_squared:
                continue
            left, right = self._children[node]
            if left < 0:
                start, stop = self._ranges[node]
                block = self.points[self._order[start:stop]]
                diff = block - query
                distances = np.einsum("ij,ij->i", diff, diff)
                count += int(np.count_nonzero(distances <= r_squared))
                continue
            axis = self._split_axis[node]
            delta = float(query[axis]) - self._split_value[node]
            near, far = (left, right) if delta < 0 else (right, left)
            stack.append((far, max(gap_squared, delta * delta)))
            stack.append((near, gap_squared))
        return count

    def __len__(self) -> int:
        return len(self.points)
