"""Spatial search substrates: kd-tree and closest point pair.

Used by the kd-tree nested-loop variant (paper footnote 9) and by the
theoretical algorithm's pre-processing (Theorem 1, which needs the closest
point pair between every pair of objects).
"""

from repro.spatial.closest_pair import closest_pair_distance
from repro.spatial.kdtree import KDTree

__all__ = ["KDTree", "closest_pair_distance"]
