"""Parallel MIO query processing (Section IV).

:class:`ParallelMIOEngine` is the shared
:class:`~repro.core.pipeline.PhasePipeline` configured with the parallel
stage set (:mod:`repro.parallel.stages`): the same four BIGrid phases,
run under the paper's partitioning schemes on a
:class:`~repro.parallel.executor.SimulatedExecutor` (DESIGN.md §5).
Answers are exact and identical to the serial engine, and each phase
reports the simulated makespan of its schedule.  The reported ``phases``
are therefore *parallel* times, while ``extra["serial:..."]`` keeps the
serial cost of the same work so speedups can be computed.

Two pipeline configuration differences from the serial engine, both
preserved from the pre-pipeline behavior: fault trips and deadline
checkpoints run *inside* each phase span (``trip_inside_span``), so an
injected fault is recorded on the span before the fallback sees it; and
the root span's duration is overridden with the simulated total
(``makespan_root``), so the trace tree sums like ``result.total_time``.

Serial fallback is the pipeline's ``fallback`` hook: when a partition
task dies past its retry budget (or a fault fires in an unretried inline
loop), the query re-runs through the serial stage set -- a mid-run
stage-implementation swap, not a separate code path.  The serial engine
opens its own ``query`` span (a child of ours) and observes itself as
``engine="serial"``, so the fallback is visible in both the trace and
the metrics without double counting.

Labels produced by earlier *serial* queries are consumed (the Fig. 9
"BIGrid-label" configuration); the parallel engine never writes labels,
because labeling requires the canonical serial access order.

:func:`parallel_nested_loop` and :func:`parallel_simple_grid` (re-exported
from :mod:`repro.parallel.competitors`) are the paper's parallel
renditions of the competitors.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.core.objects import ObjectCollection
from repro.core.pipeline import PhasePipeline, QueryContext
from repro.core.query import MIOResult
from repro.errors import InjectedFault, InvalidQueryError, PartitionTaskError
from repro.grid.cache import LargeKeyCache
from repro.kernels import resolve_kernel
from repro.obs import metrics as obs_metrics
from repro.obs.trace import ensure_tracer
from repro.parallel.competitors import (  # noqa: F401  (public re-exports)
    parallel_nested_loop,
    parallel_simple_grid,
)
from repro.parallel.executor import SimulatedExecutor
from repro.parallel.stages import PARALLEL_STAGES
from repro.resilience import Deadline

LB_STRATEGIES = ("greedy-d", "hash-p")
UB_STRATEGIES = ("greedy-p", "greedy-d")


def _fall_back_to_serial(ctx: QueryContext, cause: Exception, root) -> MIOResult:
    """Swap in the serial stage set mid-run (the pipeline's fallback hook).

    A partition task died past its retry budget (or a fault fired in an
    unretried inline loop).  The answer is still computable: degrade to
    the serial engine rather than crash the query.
    """
    engine = ctx.engine
    if not engine.serial_fallback:
        raise cause
    obs_metrics.counter(
        "repro_serial_fallbacks_total",
        "Parallel queries that degraded to the serial engine",
    ).inc()
    root.set_attributes(serial_fallback=True)
    serial = MIOEngine(
        engine.collection,
        backend=engine.backend,
        label_store=engine.label_store,
        label_reuse=engine.label_reuse,
        key_cache=engine.key_cache,
        kernel=engine.kernel,
    )
    if ctx.want_ranking:
        result = serial.query_topk(
            ctx.r, ctx.k, deadline=ctx.deadline, tracer=ctx.tracer
        )
    else:
        result = serial.query(ctx.r, deadline=ctx.deadline, tracer=ctx.tracer)
    result.counters["serial_fallback"] = 1
    if isinstance(cause, PartitionTaskError) and cause.task_index is not None:
        result.counters["failed_task_index"] = cause.task_index
    result.notes["serial_fallback"] = f"parallel execution failed: {cause}"
    return result


#: The one orchestrator, configured for simulated-parallel execution.
PARALLEL_PIPELINE = PhasePipeline(
    PARALLEL_STAGES,
    engine="parallel",
    root_attributes=lambda ctx: {
        "cores": ctx.engine.cores,
        "r": ctx.r,
        "k": ctx.k,
        "backend": ctx.backend,
    },
    trip_inside_span=True,
    derive_phases=False,
    makespan_root=True,
    fallback=_fall_back_to_serial,
    fallback_errors=(PartitionTaskError, InjectedFault),
)


class ParallelMIOEngine:
    """Multi-core MIO query processing with simulated makespan accounting."""

    def __init__(
        self,
        collection: ObjectCollection,
        cores: int,
        backend: str = "ewah",
        lb_strategy: str = "greedy-d",
        ub_strategy: str = "greedy-p",
        label_store: Optional[LabelStore] = None,
        label_reuse: str = "safe",
        retries: int = 2,
        serial_fallback: bool = True,
        key_cache: Optional[LargeKeyCache] = None,
        tracer=None,
        kernel: str = "python",
    ) -> None:
        if lb_strategy not in LB_STRATEGIES:
            raise InvalidQueryError(f"lb_strategy must be one of {LB_STRATEGIES}")
        if ub_strategy not in UB_STRATEGIES:
            raise InvalidQueryError(f"ub_strategy must be one of {UB_STRATEGIES}")
        if label_reuse not in ("safe", "paper"):
            raise InvalidQueryError('label_reuse must be "safe" or "paper"')
        resolve_kernel(kernel)  # validate the name up front
        self.collection = collection
        self.executor = SimulatedExecutor(cores, retries=retries)
        self.cores = cores
        self.backend = backend
        self.lb_strategy = lb_strategy
        self.ub_strategy = ub_strategy
        self.label_store = label_store
        self.label_reuse = label_reuse
        #: Re-executions granted to a failing partition task before the
        #: round aborts (and, with ``serial_fallback``, the query degrades
        #: to the serial engine instead of crashing).
        self.retries = retries
        self.serial_fallback = serial_fallback
        #: Optional session-shared large-grid key cache (see
        #: :class:`~repro.grid.cache.LargeKeyCache`): the key computation in
        #: grid mapping is reused across same-ceiling queries, exactly as in
        #: the serial engine.  The serial fallback engine shares it too.
        self.key_cache = key_cache
        #: Optional tracer: each query records phase spans whose durations
        #: are the simulated makespans (matching ``phases``), with one
        #: child span per simulated core carrying that core's load.
        self.tracer = tracer
        #: Compute-kernel backend (see :mod:`repro.kernels`); the parallel
        #: stages use its key computation and distance primitive, and the
        #: serial fallback engine inherits it.
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(
        self,
        r: float,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """The MIO answer plus simulated per-phase parallel times."""
        if deadline is None:
            deadline = Deadline.from_timeout_ms(timeout_ms)
        return self._run(r, k=1, want_ranking=False, deadline=deadline, tracer=tracer)

    def query_topk(
        self,
        r: float,
        k: int,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """The top-k variant under parallel processing."""
        if k < 1:
            raise InvalidQueryError("k must be at least 1")
        if deadline is None:
            deadline = Deadline.from_timeout_ms(timeout_ms)
        return self._run(r, k=k, want_ranking=True, deadline=deadline, tracer=tracer)

    # ------------------------------------------------------------------
    # Pipeline entry
    # ------------------------------------------------------------------

    def _run(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        if r <= 0:
            raise InvalidQueryError("the distance threshold r must be positive")
        tracer = ensure_tracer(tracer if tracer is not None else self.tracer)
        ctx = QueryContext(
            collection=self.collection,
            r=r,
            k=k,
            want_ranking=want_ranking,
            deadline=deadline,
            tracer=tracer,
            backend=self.backend,
            label_store=self.label_store,
            label_reuse=self.label_reuse,
            key_cache=self.key_cache,
            engine=self,
            kernel=self.kernel,
        )
        return PARALLEL_PIPELINE.run(ctx)
