"""Parallel MIO query processing (Section IV).

:class:`ParallelMIOEngine` is the shared
:class:`~repro.core.pipeline.PhasePipeline` configured with one of two
parallel stage sets:

``mode="sharded"`` (the default) is *real* multiprocess execution: the
collection is routed onto curve-contiguous shards with exact Lemma-2
halos (:mod:`repro.shard.router`), each shard runs the full vectorized
phase chain in a persistent worker process over shared-memory
coordinates (:mod:`repro.shard.executor`), and the coordinator replays
the serial best-first loop over the shards' answers
(:mod:`repro.shard.merge`) — so the answer is bit-identical to the
serial engine, including tie selection, while the phases are genuine
wall-clock times that shrink with cores.

``mode="simulated"`` is the legacy single-process engine kept for the
paper's Fig. 9 schedule study: the same four BIGrid phases run under
the paper's partitioning schemes on a
:class:`~repro.parallel.executor.SimulatedExecutor` (DESIGN.md §5), and
each phase reports the simulated *makespan* of its schedule while
``extra["serial:..."]`` keeps the serial cost so speedups can be
computed.  Only this mode consumes labels (the Fig. 9 "BIGrid-label"
configuration); the sharded mode always runs label-free, because labels
encode the canonical serial access order of the *whole* collection.

Serial fallback is the pipeline's ``fallback`` hook in both modes: when
a task dies past its retry budget (a shard worker in sharded mode, a
partition task in simulated mode), the query re-runs through the serial
stage set — a mid-run stage-implementation swap, not a separate code
path.  The serial engine opens its own ``query`` span (a child of ours)
and observes itself as ``engine="serial"``, so the fallback is visible
in both the trace and the metrics without double counting.

:func:`parallel_nested_loop` and :func:`parallel_simple_grid` (re-exported
from :mod:`repro.parallel.competitors`) are the paper's parallel
renditions of the competitors.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.core.objects import ObjectCollection
from repro.core.pipeline import SERIAL_PIPELINE, PhasePipeline, QueryContext
from repro.core.query import MIOResult
from repro.errors import InjectedFault, InvalidQueryError, PartitionTaskError
from repro.grid.cache import LargeKeyCache
from repro.kernels import numpy_kernel_available, resolve_kernel
from repro.obs import metrics as obs_metrics
from repro.obs.trace import ensure_tracer
from repro.planner import Plan, capture_statistics, resolve_planner
from repro.parallel.competitors import (  # noqa: F401  (public re-exports)
    parallel_nested_loop,
    parallel_simple_grid,
)
from repro.parallel.executor import SimulatedExecutor
from repro.parallel.stages import PARALLEL_STAGES, SHARDED_STAGES
from repro.resilience import Deadline
from repro.shard.curves import CURVES
from repro.shard.executor import ShardExecutor
from repro.shard.router import ShardPlanCache

LB_STRATEGIES = ("greedy-d", "hash-p")
UB_STRATEGIES = ("greedy-p", "greedy-d")
PARALLEL_MODES = ("sharded", "simulated")


def _fall_back_to_serial(ctx: QueryContext, cause: Exception, root) -> MIOResult:
    """Swap in the serial stage set mid-run (the pipeline's fallback hook).

    A parallel task died past its retry budget (or a fault fired in an
    unretried inline loop).  The answer is still computable: degrade to
    the serial engine rather than crash the query.
    """
    engine = ctx.engine
    if not engine.serial_fallback:
        raise cause
    obs_metrics.counter(
        "repro_serial_fallbacks_total",
        "Parallel queries that degraded to the serial engine",
    ).inc()
    root.set_attributes(serial_fallback=True)
    serial = MIOEngine(
        engine.collection,
        backend=engine.backend,
        label_store=engine.label_store,
        label_reuse=engine.label_reuse,
        key_cache=engine.key_cache,
        kernel=engine.kernel,
    )
    if ctx.want_ranking:
        result = serial.query_topk(
            ctx.r, ctx.k, deadline=ctx.deadline, tracer=ctx.tracer
        )
    else:
        result = serial.query(ctx.r, deadline=ctx.deadline, tracer=ctx.tracer)
    result.counters["serial_fallback"] = 1
    if isinstance(cause, PartitionTaskError) and cause.task_index is not None:
        result.counters["failed_task_index"] = cause.task_index
    result.notes["serial_fallback"] = f"parallel execution failed: {cause}"
    return result


#: The orchestrator configured for simulated-parallel execution (legacy
#: ``mode="simulated"``; see the module docstring).
PARALLEL_PIPELINE = PhasePipeline(
    PARALLEL_STAGES,
    engine="parallel",
    root_attributes=lambda ctx: {
        "cores": ctx.engine.cores,
        "mode": "simulated",
        "r": ctx.r,
        "k": ctx.k,
        "backend": ctx.backend,
    },
    trip_inside_span=True,
    derive_phases=False,
    makespan_root=True,
    fallback=_fall_back_to_serial,
    fallback_errors=(PartitionTaskError, InjectedFault),
)

#: The orchestrator configured for real shard-parallel execution
#: (``mode="sharded"``, the default).  Stages are wall-clock-timed like
#: the serial pipeline's, so ``derive_phases`` stays on and the root
#: span keeps its measured duration.
SHARDED_PIPELINE = PhasePipeline(
    SHARDED_STAGES,
    engine="parallel",
    root_attributes=lambda ctx: {
        "cores": ctx.engine.cores,
        "shards": ctx.shards if ctx.shards is not None else ctx.engine.shards,
        "mode": "sharded",
        "r": ctx.r,
        "k": ctx.k,
        "backend": ctx.backend,
    },
    fallback=_fall_back_to_serial,
    fallback_errors=(PartitionTaskError, InjectedFault),
)


class ParallelMIOEngine:
    """Multi-core MIO query processing.

    ``mode="sharded"`` (default) runs each query across a persistent
    pool of ``cores`` worker processes (exact, serial-identical answers;
    real wall-clock speedup); ``mode="simulated"`` keeps the legacy
    single-process schedule simulation with makespan accounting.
    """

    def __init__(
        self,
        collection: ObjectCollection,
        cores: int,
        backend: str = "ewah",
        lb_strategy: str = "greedy-d",
        ub_strategy: str = "greedy-p",
        label_store: Optional[LabelStore] = None,
        label_reuse: str = "safe",
        retries: int = 2,
        serial_fallback: bool = True,
        key_cache: Optional[LargeKeyCache] = None,
        tracer=None,
        kernel: str = "python",
        mode: str = "sharded",
        shards: Optional[int] = None,
        curve: str = "hilbert",
        planner=None,
    ) -> None:
        if lb_strategy not in LB_STRATEGIES:
            raise InvalidQueryError(f"lb_strategy must be one of {LB_STRATEGIES}")
        if ub_strategy not in UB_STRATEGIES:
            raise InvalidQueryError(f"ub_strategy must be one of {UB_STRATEGIES}")
        if label_reuse not in ("safe", "paper"):
            raise InvalidQueryError('label_reuse must be "safe" or "paper"')
        if mode not in PARALLEL_MODES:
            raise InvalidQueryError(f"mode must be one of {PARALLEL_MODES}")
        if curve not in CURVES:
            raise InvalidQueryError(f"curve must be one of {CURVES}")
        if shards is not None and shards < 1:
            raise InvalidQueryError("shards must be at least 1")
        if cores < 1:
            raise InvalidQueryError("cores must be at least 1")
        resolve_kernel(kernel)  # validate the name up front
        self.collection = collection
        self.executor = SimulatedExecutor(cores, retries=retries)
        self.cores = cores
        self.backend = backend
        self.lb_strategy = lb_strategy
        self.ub_strategy = ub_strategy
        self.label_store = label_store
        self.label_reuse = label_reuse
        #: Re-executions granted to a failing task before the round
        #: aborts (and, with ``serial_fallback``, the query degrades to
        #: the serial engine instead of crashing).
        self.retries = retries
        self.serial_fallback = serial_fallback
        #: Optional session-shared large-grid key cache (see
        #: :class:`~repro.grid.cache.LargeKeyCache`): the key computation in
        #: grid mapping is reused across same-ceiling queries, exactly as in
        #: the serial engine.  The serial fallback engine shares it too.
        #: (Simulated mode only; shard workers build their own grids.)
        self.key_cache = key_cache
        #: Optional tracer: each query records phase spans (wall-clock in
        #: sharded mode with one child span per shard; simulated makespans
        #: in simulated mode with one child span per simulated core).
        self.tracer = tracer
        #: Compute-kernel backend (see :mod:`repro.kernels`); shard
        #: workers run its full phase chain, the simulated stages use its
        #: key computation and distance primitive, and the serial
        #: fallback engine inherits it.
        self.kernel = kernel
        #: Execution mode: "sharded" (real processes) or "simulated".
        self.mode = mode
        #: Shards per query in sharded mode (default: one per core).
        self.shards = shards if shards is not None else cores
        #: Space-filling curve the shard router orders cells by.
        self.curve = curve
        #: Routing decisions cached per ``(ceil_r, shards, curve)``.
        self.plan_cache = ShardPlanCache()
        #: Optional query planner (see :mod:`repro.planner`).  Sharded
        #: mode only: per query the planner picks mode (a small query
        #: degenerates to the serial pipeline in-process), shard count,
        #: and kernel, against this engine's static configuration as the
        #: baseline.  The simulated schedule study is never re-planned.
        self.planner = resolve_planner(planner)
        self._shard_executor: Optional[ShardExecutor] = None

    # ------------------------------------------------------------------
    # Sharded-execution resources
    # ------------------------------------------------------------------

    @property
    def shard_executor(self) -> ShardExecutor:
        """The lazy worker pool (inline when ``cores <= 1``)."""
        if self._shard_executor is None:
            self._shard_executor = ShardExecutor(
                self.collection, self.cores, retries=self.retries
            )
        return self._shard_executor

    def close(self) -> None:
        """Release worker processes and shared memory (idempotent)."""
        if self._shard_executor is not None:
            self._shard_executor.close()
            self._shard_executor = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(
        self,
        r: float,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """The MIO answer plus per-phase parallel times."""
        if deadline is None:
            deadline = Deadline.from_timeout_ms(timeout_ms)
        return self._run(r, k=1, want_ranking=False, deadline=deadline, tracer=tracer)

    def query_topk(
        self,
        r: float,
        k: int,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """The top-k variant under parallel processing."""
        if k < 1:
            raise InvalidQueryError("k must be at least 1")
        if deadline is None:
            deadline = Deadline.from_timeout_ms(timeout_ms)
        return self._run(r, k=k, want_ranking=True, deadline=deadline, tracer=tracer)

    # ------------------------------------------------------------------
    # Pipeline entry
    # ------------------------------------------------------------------

    def _run(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        if r <= 0:
            raise InvalidQueryError("the distance threshold r must be positive")
        tracer = ensure_tracer(tracer if tracer is not None else self.tracer)
        plan = decision = stats = None
        if self.planner is not None and self.mode == "sharded":
            # Engine-level planning: mode and shard count must be known
            # before a pipeline is even selected, so the decision happens
            # here and rides into the context pre-pinned (the planning
            # stage then only applies it).  The baseline is this engine's
            # static configuration — the planner must predict a real win
            # to deviate from it.
            stats = capture_statistics(
                self.collection,
                r,
                k=k,
                cores=self.cores,
                sharding_available=True,
                numpy_available=numpy_kernel_available(),
                plan_cache_balance=self.plan_cache.observed_balance(),
            )
            baseline = Plan(
                kernel=resolve_kernel(self.kernel).name,
                mode="sharded",
                shards=self.shards,
            )
            decision = self.planner.decide(stats, baseline)
            plan = decision.plan
        run_serial = plan is not None and plan.mode == "serial"
        sharded = self.mode == "sharded" and not run_serial
        ctx = QueryContext(
            collection=self.collection,
            r=r,
            k=k,
            want_ranking=want_ranking,
            deadline=deadline,
            tracer=tracer,
            backend=self.backend,
            # The sharded path (and a planner-degenerated serial run of
            # it) stays label-free: labels encode the canonical serial
            # access order of the whole collection (module docstring).
            label_store=self.label_store if self.mode == "simulated" else None,
            label_reuse=self.label_reuse,
            key_cache=self.key_cache,
            engine=self,
            kernel=self.kernel,
            shards=(
                (plan.shards if plan is not None else self.shards)
                if sharded
                else None
            ),
            planner=self.planner if self.mode == "sharded" else None,
            plan=plan,
        )
        ctx.plan_decision = decision
        ctx.plan_stats = stats
        if run_serial:
            # The planner judged the fan-out overhead not worth it for
            # this query: run the serial stage set in-process.  Answers
            # are bit-identical either way (the merge replays the serial
            # loop); only the wall-clock differs.
            pipeline = SERIAL_PIPELINE
        elif self.mode == "sharded":
            pipeline = SHARDED_PIPELINE
        else:
            pipeline = PARALLEL_PIPELINE
        return pipeline.run(ctx)
