"""Parallel MIO query processing (Section IV).

:class:`ParallelMIOEngine` runs the four BIGrid phases under the paper's
partitioning schemes on a :class:`~repro.parallel.executor.SimulatedExecutor`
(DESIGN.md §5): answers are exact and identical to the serial engine, and
each phase reports the simulated makespan of its schedule.  The reported
``phases`` are therefore *parallel* times, while ``extra["serial:..."]``
keeps the serial cost of the same work so speedups can be computed.

Phase parallelization mirrors the paper exactly:

* grid mapping   -- points of each object hash-partitioned (barrier per
  object; parallelizing the object loop is NP-complete, Theorem 3);
* lower-bounding -- ``lb_strategy="greedy-d"`` (objects by ``|o_i.L|``,
  no synchronization) or ``"hash-p"`` (per-object key split with local
  bitsets merged at each object barrier);
* upper-bounding -- ``ub_strategy="greedy-p"`` (Eq. (3) cost-based key
  groups with single-core key ownership) or ``"greedy-d"`` (naive split
  of objects by point count);
* verification   -- best-first candidate loop with each candidate's point
  groups split across cores and local bitsets merged per candidate.

Labels produced by earlier *serial* queries are consumed (the Fig. 9
"BIGrid-label" configuration); the parallel engine never writes labels,
because labeling requires the canonical serial access order.

:func:`parallel_nested_loop` and :func:`parallel_simple_grid` are the
paper's parallel renditions of the competitors: NL parallelizes the inner
partner loop (a barrier per outer object), SG hash-partitions the
per-object scoring tasks after a serial grid build.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.bitset.factory import resolve_backend
from repro.core.engine import MIOEngine
from repro.core.geometry import point_sets_interact
from repro.core.labels import LabelStore, PointLabels, labels_match_collection
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.core.verification import _bits_of
from repro.errors import InjectedFault, InvalidQueryError, PartitionTaskError
from repro.baselines.simple_grid import SimpleGridAlgorithm
from repro.grid.bigrid import BIGrid
from repro.grid.cache import LargeKeyCache
from repro.grid.keys import compute_keys, large_cell_width, small_cell_width
from repro.grid.large_grid import LargeGrid
from repro.grid.small_grid import SmallGrid
from repro.obs import metrics as obs_metrics
from repro.obs.recorders import observe_query
from repro.obs.trace import ensure_tracer
from repro.parallel.executor import CoreReport, SimulatedExecutor, gc_paused
from repro.parallel.partitioning import hash_partition, static_block_partition
from repro.resilience import Deadline, checkpoint
from repro.parallel.plans import (
    plan_lower_bounding_greedy_d,
    plan_upper_bounding_greedy_d,
    plan_upper_bounding_greedy_p,
    plan_verification_chunks,
)

LB_STRATEGIES = ("greedy-d", "hash-p")
UB_STRATEGIES = ("greedy-p", "greedy-d")


def _kth_largest(values: List[int], k: int) -> int:
    """The k-th highest value (0 when fewer than k values exist)."""
    if k > len(values):
        return 0
    return sorted(values, reverse=True)[k - 1]


class ParallelMIOEngine:
    """Multi-core MIO query processing with simulated makespan accounting."""

    def __init__(
        self,
        collection: ObjectCollection,
        cores: int,
        backend: str = "ewah",
        lb_strategy: str = "greedy-d",
        ub_strategy: str = "greedy-p",
        label_store: Optional[LabelStore] = None,
        label_reuse: str = "safe",
        retries: int = 2,
        serial_fallback: bool = True,
        key_cache: Optional[LargeKeyCache] = None,
        tracer=None,
    ) -> None:
        if lb_strategy not in LB_STRATEGIES:
            raise InvalidQueryError(f"lb_strategy must be one of {LB_STRATEGIES}")
        if ub_strategy not in UB_STRATEGIES:
            raise InvalidQueryError(f"ub_strategy must be one of {UB_STRATEGIES}")
        if label_reuse not in ("safe", "paper"):
            raise InvalidQueryError('label_reuse must be "safe" or "paper"')
        self.collection = collection
        self.executor = SimulatedExecutor(cores, retries=retries)
        self.cores = cores
        self.backend = backend
        self.lb_strategy = lb_strategy
        self.ub_strategy = ub_strategy
        self.label_store = label_store
        self.label_reuse = label_reuse
        #: Re-executions granted to a failing partition task before the
        #: round aborts (and, with ``serial_fallback``, the query degrades
        #: to the serial engine instead of crashing).
        self.retries = retries
        self.serial_fallback = serial_fallback
        #: Optional session-shared large-grid key cache (see
        #: :class:`~repro.grid.cache.LargeKeyCache`): the key computation in
        #: grid mapping is reused across same-ceiling queries, exactly as in
        #: the serial engine.  The serial fallback engine shares it too.
        self.key_cache = key_cache
        #: Optional tracer: each query records phase spans whose durations
        #: are the simulated makespans (matching ``phases``), with one
        #: child span per simulated core carrying that core's load.
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(
        self,
        r: float,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """The MIO answer plus simulated per-phase parallel times."""
        if deadline is None:
            deadline = Deadline.from_timeout_ms(timeout_ms)
        return self._run(r, k=1, want_ranking=False, deadline=deadline, tracer=tracer)

    def query_topk(
        self,
        r: float,
        k: int,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """The top-k variant under parallel processing."""
        if k < 1:
            raise InvalidQueryError("k must be at least 1")
        if deadline is None:
            deadline = Deadline.from_timeout_ms(timeout_ms)
        return self._run(r, k=k, want_ranking=True, deadline=deadline, tracer=tracer)

    def _run(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        if r <= 0:
            raise InvalidQueryError("the distance threshold r must be positive")
        tracer = ensure_tracer(tracer if tracer is not None else self.tracer)
        with tracer.span(
            "query", engine="parallel", cores=self.cores, r=r, k=k, backend=self.backend
        ) as root:
            try:
                result = self._run_parallel(r, k, want_ranking, deadline, tracer)
            except (PartitionTaskError, InjectedFault) as cause:
                # A partition task died past its retry budget (or a fault
                # fired in an unretried inline loop).  The answer is still
                # computable: degrade to the serial engine rather than
                # crash the query.
                if not self.serial_fallback:
                    raise
                obs_metrics.counter(
                    "repro_serial_fallbacks_total",
                    "Parallel queries that degraded to the serial engine",
                ).inc()
                root.set_attributes(serial_fallback=True)
                result = self._serial_fallback(r, k, want_ranking, deadline, cause, tracer)
            root.set_attributes(winner=result.winner, score=result.score, exact=result.exact)
            # Phase spans carry simulated makespans; override the root's
            # wall-clock too so the tree sums like ``result.total_time``.
            root.set_duration(result.total_time)
        return result

    def _serial_fallback(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline],
        cause: Exception,
        tracer=None,
    ) -> MIOResult:
        engine = MIOEngine(
            self.collection,
            backend=self.backend,
            label_store=self.label_store,
            label_reuse=self.label_reuse,
            key_cache=self.key_cache,
        )
        # The serial engine opens its own "query" span (a child of ours) and
        # observes itself as engine="serial", so the fallback is visible in
        # both the trace and the metrics without double counting.
        result = engine._run(r, k=k, want_ranking=want_ranking, deadline=deadline, tracer=tracer)
        result.counters["serial_fallback"] = 1
        if isinstance(cause, PartitionTaskError) and cause.task_index is not None:
            result.counters["failed_task_index"] = cause.task_index
        result.notes["serial_fallback"] = f"parallel execution failed: {cause}"
        return result

    def _finish_phase_span(self, tracer, span, report: CoreReport) -> None:
        """Seal a parallel phase span so the trace matches ``phases``.

        The span's wall-clock measurement is replaced by the simulated
        makespan, and one child span per simulated core carries that core's
        charged load, so ``repro explain`` shows the schedule's balance.
        """
        span.set_duration(report.makespan)
        span.set_attributes(
            serial_seconds=report.serial_seconds,
            barrier_seconds=report.barrier_seconds,
            merge_seconds=report.merge_seconds,
        )
        # Barrier-accumulated phases charge rounds, not cores: their
        # per-core vector is all zeros and would only add noise.
        if tracer.enabled and any(report.per_core_seconds):
            for core, seconds in enumerate(report.per_core_seconds):
                tracer.record(f"core-{core}", seconds, core=core)

    def _run_parallel(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        tracer = ensure_tracer(tracer)
        labels = None
        if self.label_store is not None:
            labels = self.label_store.get(math.ceil(r))
            if labels is not None and not labels_match_collection(labels, self.collection):
                labels = None  # stale store: relabeling is the serial engine's job

        with tracer.span("grid_mapping") as span:
            faults.trip("grid_mapping")
            checkpoint(deadline, "grid_mapping")
            bigrid, map_report = self._parallel_grid_mapping(r, labels)
            self._finish_phase_span(tracer, span, map_report)
            span.set_attributes(
                small_cells=len(bigrid.small_grid.cells),
                large_cells=len(bigrid.large_grid.cells),
                mapped_points=bigrid.mapped_points,
            )
        with tracer.span("lower_bounding", strategy=self.lb_strategy) as span:
            faults.trip("lower_bounding")
            checkpoint(deadline, "lower_bounding")
            lower_values, lower_bitsets, lb_report = self._parallel_lower_bounding(bigrid, labels)
            threshold = _kth_largest(lower_values, k)
            self._finish_phase_span(tracer, span, lb_report)
            span.set_attributes(tau_max_low=threshold)
        with tracer.span("upper_bounding", strategy=self.ub_strategy) as span:
            faults.trip("upper_bounding")
            checkpoint(deadline, "upper_bounding")
            candidates, ub_report = self._parallel_upper_bounding(bigrid, threshold, labels)
            self._finish_phase_span(tracer, span, ub_report)
            span.set_attributes(candidates=len(candidates))
        with tracer.span("verification") as span:
            faults.trip("verification")
            checkpoint(deadline, "verification")
            ranking, verify_report, verified = self._parallel_verification(
                bigrid, candidates, r, lower_bitsets, labels, k
            )
            self._finish_phase_span(tracer, span, verify_report)
            span.set_attributes(settled=verified)
        winner, score = ranking[0] if ranking else (candidates[0][1] if candidates else 0, 0)

        phases = {
            "grid_mapping": map_report.makespan,
            "lower_bounding": lb_report.makespan,
            "upper_bounding": ub_report.makespan,
            "verification": verify_report.makespan,
        }
        extra: Dict[str, float] = {
            "serial:grid_mapping": map_report.serial_seconds,
            "serial:lower_bounding": lb_report.serial_seconds,
            "serial:upper_bounding": ub_report.serial_seconds,
            "serial:verification": verify_report.serial_seconds,
        }
        result = MIOResult(
            algorithm="bigrid-parallel" if labels is None else "bigrid-label-parallel",
            r=r,
            winner=winner,
            score=score,
            topk=ranking if want_ranking else None,
            phases=phases,
            counters={
                "cores": self.cores,
                "candidates": len(candidates),
                "verified_objects": verified,
            },
            memory_bytes=bigrid.memory_bytes(),
            extra=extra,
        )
        observe_query(result, engine="parallel")
        return result

    # ------------------------------------------------------------------
    # PARALLEL-GRID-MAPPING: hash-partition each object's points
    # ------------------------------------------------------------------

    def _parallel_grid_mapping(
        self, r: float, labels: Optional[PointLabels]
    ) -> Tuple[BIGrid, CoreReport]:
        collection = self.collection
        bitset_cls, _ = resolve_backend(self.backend)
        dimension = collection.dimension
        s_width = small_cell_width(r, dimension)
        l_width = large_cell_width(r)
        small_grid = SmallGrid(s_width, dimension, bitset_cls)
        large_grid = LargeGrid(l_width, dimension, bitset_cls)
        key_lists = [set() for _ in range(collection.n)]
        object_groups: List[Dict] = [{} for _ in range(collection.n)]

        report = CoreReport(self.cores)
        with gc_paused():
            self._map_objects(
                collection, labels, small_grid, large_grid, key_lists,
                object_groups, s_width, l_width, report, r,
            )
        mapped_points = sum(
            len(points)
            for groups in object_groups
            for points in groups.values()
        )

        bigrid = BIGrid(
            collection, r, small_grid, large_grid, key_lists, object_groups, mapped_points
        )
        return bigrid, report

    def _map_objects(
        self, collection, labels, small_grid, large_grid, key_lists,
        object_groups, s_width, l_width, report, r,
    ) -> None:
        keys_provider = (
            self.key_cache.provider(collection, math.ceil(r))
            if self.key_cache is not None
            else None
        )
        for obj in collection:
            oid = obj.oid
            if labels is not None:
                indices = np.nonzero(labels.grid_mask(oid))[0]
            else:
                indices = np.arange(obj.num_points)
            if len(indices) == 0:
                continue
            small_keys = compute_keys(obj.points[indices], s_width)
            if keys_provider is not None:
                large_keys = keys_provider(oid, indices)
            else:
                large_keys = compute_keys(obj.points[indices], l_width)
            chunks = hash_partition(len(indices), self.cores)
            round_max = 0.0
            for core, chunk in enumerate(chunks):
                if not chunk:
                    continue
                # Inline (unretried) chunk: an injected failure here is
                # handled by the engine-level serial fallback.
                faults.trip("partition_task", detail=("grid_mapping", oid, core))
                started = time.perf_counter()
                for position in chunk:
                    point_index = int(indices[position])
                    reached, first_oid = small_grid.add_point(oid, small_keys[position])
                    if reached == 2:
                        key_lists[first_oid].add(small_keys[position])
                        key_lists[oid].add(small_keys[position])
                    elif reached is not None and reached > 2:
                        key_lists[oid].add(small_keys[position])
                    large_key = large_keys[position]
                    large_grid.add_point(oid, large_key, point_index)
                    object_groups[oid].setdefault(large_key, []).append(point_index)
                elapsed = time.perf_counter() - started
                report.serial_seconds += elapsed
                round_max = max(round_max, elapsed)
            report.barrier_seconds += round_max

    # ------------------------------------------------------------------
    # PARALLEL-LOWER-BOUNDING
    # ------------------------------------------------------------------

    def _parallel_lower_bounding(
        self, bigrid: BIGrid, labels: Optional[PointLabels]
    ) -> Tuple[List[int], Optional[List], CoreReport]:
        keep_bitsets = labels is not None
        if self.lb_strategy == "greedy-d":
            return self._lower_bounding_greedy_d(bigrid, keep_bitsets)
        return self._lower_bounding_hash_p(bigrid, keep_bitsets)

    def _lower_bounding_greedy_d(
        self, bigrid: BIGrid, keep_bitsets: bool
    ) -> Tuple[List[int], Optional[List], CoreReport]:
        """Objects split by ``|o_i.L|``; no synchronization, no merge."""
        plan = plan_lower_bounding_greedy_d(bigrid, self.cores)
        small_grid = bigrid.small_grid
        bitset_cls = small_grid.bitset_cls
        values = [0] * bigrid.collection.n
        bitsets = [None] * bigrid.collection.n if keep_bitsets else None

        def make_task(oid: int):
            def task() -> None:
                union = 0
                for key in bigrid.key_lists[oid]:
                    union |= small_grid.cells[key].bitset.to_int()
                cardinality = union.bit_count()
                values[oid] = cardinality - 1 if cardinality else 0
                if bitsets is not None and cardinality:
                    bitsets[oid] = union
            return task

        tasks = [make_task(oid) for oid in range(bigrid.collection.n)]
        _, report = self.executor.run(tasks, plan.assignment)
        return values, bitsets, report

    def _lower_bounding_hash_p(
        self, bigrid: BIGrid, keep_bitsets: bool
    ) -> Tuple[List[int], Optional[List], CoreReport]:
        """Per-object key split with per-core local bitsets merged at a barrier."""
        small_grid = bigrid.small_grid
        bitset_cls = small_grid.bitset_cls
        values = [0] * bigrid.collection.n
        bitsets = [None] * bigrid.collection.n if keep_bitsets else None
        report = CoreReport(self.cores)

        with gc_paused():
            self._hash_p_rounds(bigrid, values, bitsets, report)
        return values, bitsets, report

    def _hash_p_rounds(self, bigrid, values, bitsets, report) -> None:
        small_grid = bigrid.small_grid
        for oid in range(bigrid.collection.n):
            keys = list(bigrid.key_lists[oid])
            if not keys:
                continue
            chunks = hash_partition(len(keys), self.cores)
            locals_: List = [None] * self.cores
            round_max = 0.0
            for core, chunk in enumerate(chunks):
                if not chunk:
                    continue
                faults.trip("partition_task", detail=("lower_bounding", oid, core))
                started = time.perf_counter()
                union = 0
                for position in chunk:
                    union |= small_grid.cells[keys[position]].bitset.to_int()
                locals_[core] = union
                elapsed = time.perf_counter() - started
                report.serial_seconds += elapsed
                round_max = max(round_max, elapsed)
            started = time.perf_counter()
            merged = 0
            for local in locals_:
                if local is not None:
                    merged |= local
            cardinality = merged.bit_count()
            values[oid] = cardinality - 1 if cardinality else 0
            if bitsets is not None and cardinality:
                bitsets[oid] = merged
            merge_elapsed = time.perf_counter() - started
            report.serial_seconds += merge_elapsed
            report.barrier_seconds += round_max + merge_elapsed

    # ------------------------------------------------------------------
    # PARALLEL-UPPER-BOUNDING
    # ------------------------------------------------------------------

    def _parallel_upper_bounding(
        self, bigrid: BIGrid, tau_max: int, labels: Optional[PointLabels]
    ) -> Tuple[List[Tuple[int, int]], CoreReport]:
        if self.ub_strategy == "greedy-p":
            report, unions = self._upper_bounding_greedy_p(bigrid, labels)
        else:
            report, unions = self._upper_bounding_greedy_d(bigrid, labels)
        # Pruning + best-first sort stay serial (their cost is dominated by
        # the bounding work); charge them to the barrier.
        started = time.perf_counter()
        candidates = []
        for oid, union in enumerate(unions):
            cardinality = union.bit_count() if union is not None else 0
            upper = cardinality - 1 if cardinality else 0
            if upper >= tau_max:
                candidates.append((upper, oid))
        candidates.sort(key=lambda entry: (-entry[0], entry[1]))
        elapsed = time.perf_counter() - started
        report.barrier_seconds += elapsed
        report.serial_seconds += elapsed
        return candidates, report

    def _upper_bounding_greedy_p(
        self, bigrid: BIGrid, labels: Optional[PointLabels]
    ) -> Tuple[CoreReport, List]:
        """Eq. (3) cost-based group assignment with key ownership."""
        plan = plan_upper_bounding_greedy_p(
            bigrid, self.cores, include_labeling=labels is None
        )
        large_grid = bigrid.large_grid
        #: local_unions[core][oid] -- per-core partial unions (big ints).
        local_unions: List[Dict[int, int]] = [{} for _ in range(self.cores)]

        masks = (
            [labels.upper_mask(oid).tolist() for oid in range(bigrid.collection.n)]
            if labels is not None
            else None
        )

        def make_task(core: int, oid: int, key, point_indices):
            def task() -> None:
                if masks is not None and not any(masks[oid][i] for i in point_indices):
                    return
                adjacent = large_grid.adjacent_union_int(key)
                local_unions[core][oid] = local_unions[core].get(oid, 0) | adjacent
            return task

        tasks = [
            make_task(core, oid, key, points)
            for (oid, key, points), core in zip(plan.tasks, plan.assignment)
        ]
        unions: List = [None] * bigrid.collection.n

        def merge() -> None:
            for core in range(self.cores):
                for oid, partial in local_unions[core].items():
                    if unions[oid] is None:
                        unions[oid] = partial
                    else:
                        unions[oid] |= partial

        _, report = self.executor.run(tasks, plan.assignment, merge=merge)
        return report, unions

    def _upper_bounding_greedy_d(
        self, bigrid: BIGrid, labels: Optional[PointLabels]
    ) -> Tuple[CoreReport, List]:
        """Naive competitor: whole objects assigned by point count."""
        plan = plan_upper_bounding_greedy_d(bigrid, self.cores)
        large_grid = bigrid.large_grid
        unions: List = [None] * bigrid.collection.n

        def make_task(oid: int):
            def task() -> None:
                union = 0
                mask = labels.upper_mask(oid).tolist() if labels is not None else None
                for key, point_indices in bigrid.object_groups[oid].items():
                    if mask is not None and not any(mask[i] for i in point_indices):
                        continue
                    union |= large_grid.adjacent_union_int(key)
                if union:
                    unions[oid] = union
            return task

        tasks = [make_task(oid) for oid in range(bigrid.collection.n)]
        _, report = self.executor.run(tasks, plan.assignment)
        return report, unions

    # ------------------------------------------------------------------
    # PARALLEL-VERIFICATION
    # ------------------------------------------------------------------

    def _parallel_verification(
        self,
        bigrid: BIGrid,
        candidates: List[Tuple[int, int]],
        r: float,
        lower_bitsets: Optional[List],
        labels: Optional[PointLabels],
        k: int = 1,
    ) -> Tuple[List[Tuple[int, int]], CoreReport, int]:
        collection = bigrid.collection
        large_grid = bigrid.large_grid
        r_squared = r * r
        report = CoreReport(self.cores)
        best_oid, best_score = -1, -1
        verified = 0
        use_verify_mask = labels is not None and (
            self.label_reuse == "paper" or labels.r == r
        )

        with gc_paused():
            ranking, verified = self._verify_rounds(
                bigrid, candidates, r_squared, lower_bitsets, labels,
                use_verify_mask, report, k,
            )
        return ranking, report, verified

    def _verify_rounds(
        self, bigrid, candidates, r_squared, lower_bitsets, labels,
        use_verify_mask, report, k,
    ):
        from heapq import heappush, heappushpop

        best_heap: List[Tuple[int, int]] = []  # (score, -oid), min-heap
        verified = 0
        for upper, oid in candidates:
            threshold = best_heap[0][0] if len(best_heap) >= k else -1
            if upper <= threshold:
                break
            verified += 1
            groups = bigrid.object_groups[oid]
            if use_verify_mask:
                mask = labels.verify_mask(oid).tolist()
                groups = {
                    key: [p for p in points if mask[p]]
                    for key, points in groups.items()
                }
                groups = {key: points for key, points in groups.items() if points}
            per_core = plan_verification_chunks(groups, self.cores)
            seed = lower_bitsets[oid] if lower_bitsets is not None else None
            locals_: List = [None] * self.cores
            round_max = 0.0
            for core, chunk_list in enumerate(per_core):
                if not chunk_list:
                    continue
                faults.trip("partition_task", detail=("verification", oid, core))
                started = time.perf_counter()
                locals_[core] = self._verify_chunks(
                    bigrid, oid, chunk_list, r_squared, seed
                )
                elapsed = time.perf_counter() - started
                report.serial_seconds += elapsed
                round_max = max(round_max, elapsed)
            started = time.perf_counter()
            merged = (seed or 0) | (1 << oid)
            for local in locals_:
                if local is not None:
                    merged |= local
            score = merged.bit_count() - 1
            merge_elapsed = time.perf_counter() - started
            report.serial_seconds += merge_elapsed
            report.barrier_seconds += round_max + merge_elapsed
            entry = (score, -oid)
            if len(best_heap) < k:
                heappush(best_heap, entry)
            elif entry > best_heap[0]:
                heappushpop(best_heap, entry)
        ranking = sorted(
            ((-neg_oid, score) for score, neg_oid in best_heap),
            key=lambda item: (-item[1], item[0]),
        )
        return ranking, verified

    def _verify_chunks(
        self,
        bigrid: BIGrid,
        oid: int,
        chunk_list,
        r_squared: float,
        seed,
    ) -> int:
        """One core's share of a candidate's exact-score computation."""
        collection = bigrid.collection
        large_grid = bigrid.large_grid
        points = collection[oid].points
        confirmed = (seed or 0) | (1 << oid)
        for key, point_indices in chunk_list:
            for point_index in point_indices:
                pending = large_grid.adjacent_union_int(key) & ~confirmed
                if not pending:
                    continue
                remaining = _bits_of(pending)
                point = points[point_index]
                for cell in large_grid.cells[key].neighbor_cells:
                    for candidate_oid in remaining.intersection(cell.postings):
                        candidate_points = cell.posting_points(
                            candidate_oid, collection[candidate_oid].points
                        )
                        diff = candidate_points - point
                        if np.einsum("ij,ij->i", diff, diff).min() <= r_squared:
                            confirmed |= 1 << candidate_oid
                            remaining.discard(candidate_oid)
                    if not remaining:
                        break
        return confirmed


# ----------------------------------------------------------------------
# Parallel competitors (Fig. 9)
# ----------------------------------------------------------------------


def parallel_nested_loop(collection: ObjectCollection, r: float, cores: int) -> MIOResult:
    """Parallel NL: the partner loop of each outer object is partitioned.

    As in the paper, there is a barrier per outer object and per-pair costs
    are unpredictable, so load balance -- and therefore speedup -- is poor.
    """
    if r <= 0:
        raise InvalidQueryError("the distance threshold r must be positive")
    tau = [0] * collection.n
    report = CoreReport(cores)
    _nl_rounds(collection, r, cores, tau, report)
    winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
    return MIOResult(
        algorithm="nl-parallel",
        r=r,
        winner=winner,
        score=tau[winner],
        phases={"scan": report.makespan},
        counters={"cores": cores},
        extra={"serial:scan": report.serial_seconds},
    )


def _nl_rounds(collection, r, cores, tau, report) -> None:
    with gc_paused():
        for i in range(collection.n):
            partners = list(range(i + 1, collection.n))
            if not partners:
                continue
            # OpenMP-style static blocks: contiguous partner ranges whose
            # costs correlate spatially, the load-balance failure the paper
            # observes for parallel NL.
            chunks = static_block_partition(len(partners), cores)
            points_i = collection[i].points
            round_max = 0.0
            for chunk in chunks:
                if not chunk:
                    continue
                started = time.perf_counter()
                for position in chunk:
                    j = partners[position]
                    if point_sets_interact(points_i, collection[j].points, r):
                        tau[i] += 1
                        tau[j] += 1
                elapsed = time.perf_counter() - started
                report.serial_seconds += elapsed
                round_max = max(round_max, elapsed)
            report.barrier_seconds += round_max


def parallel_simple_grid(collection: ObjectCollection, r: float, cores: int) -> MIOResult:
    """Parallel SG: serial grid build, hash-partitioned per-object scoring.

    Hash partitioning balances only when tasks cost alike; skewed data makes
    per-object scoring costs vary widely, which is what limits SG's scaling
    in Fig. 9.
    """
    algorithm = SimpleGridAlgorithm(collection)
    build_seconds = algorithm.build(r)
    tau = [0] * collection.n
    chunks = hash_partition(collection.n, cores)
    report = CoreReport(cores)
    with gc_paused():
        for core, chunk in enumerate(chunks):
            started = time.perf_counter()
            for oid in chunk:
                tau[oid] = algorithm._score(oid, r)
            elapsed = time.perf_counter() - started
            report.per_core_seconds[core] += elapsed
            report.serial_seconds += elapsed
    report.barrier_seconds += build_seconds
    report.serial_seconds += build_seconds
    winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
    return MIOResult(
        algorithm="sg-parallel",
        r=r,
        winner=winner,
        score=tau[winner],
        phases={"build_and_scoring": report.makespan},
        counters={"cores": cores},
        memory_bytes=algorithm.memory_bytes(),
        extra={"serial:build_and_scoring": report.serial_seconds},
    )
