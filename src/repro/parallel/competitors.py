"""Parallel renditions of the paper's competitors (Fig. 9).

:func:`parallel_nested_loop` parallelizes the inner partner loop of NL (a
barrier per outer object); :func:`parallel_simple_grid` hash-partitions
SG's per-object scoring tasks after a serial grid build.  Both report
simulated makespans via :class:`~repro.parallel.executor.CoreReport`,
exactly like the engine's stages, so Fig. 9's speedup comparison reads
straight off ``phases`` vs ``extra["serial:..."]``.
"""

from __future__ import annotations

import time

from repro.baselines.simple_grid import SimpleGridAlgorithm
from repro.core.geometry import point_sets_interact
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.errors import InvalidQueryError
from repro.parallel.executor import CoreReport, gc_paused
from repro.parallel.partitioning import hash_partition, static_block_partition


def parallel_nested_loop(collection: ObjectCollection, r: float, cores: int) -> MIOResult:
    """Parallel NL: the partner loop of each outer object is partitioned.

    As in the paper, there is a barrier per outer object and per-pair costs
    are unpredictable, so load balance -- and therefore speedup -- is poor.
    """
    if r <= 0:
        raise InvalidQueryError("the distance threshold r must be positive")
    tau = [0] * collection.n
    report = CoreReport(cores)
    _nl_rounds(collection, r, cores, tau, report)
    winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
    return MIOResult(
        algorithm="nl-parallel",
        r=r,
        winner=winner,
        score=tau[winner],
        phases={"scan": report.makespan},
        counters={"cores": cores},
        extra={"serial:scan": report.serial_seconds},
    )


def _nl_rounds(collection, r, cores, tau, report) -> None:
    with gc_paused():
        for i in range(collection.n):
            partners = list(range(i + 1, collection.n))
            if not partners:
                continue
            # OpenMP-style static blocks: contiguous partner ranges whose
            # costs correlate spatially, the load-balance failure the paper
            # observes for parallel NL.
            chunks = static_block_partition(len(partners), cores)
            points_i = collection[i].points
            round_max = 0.0
            for chunk in chunks:
                if not chunk:
                    continue
                started = time.perf_counter()
                for position in chunk:
                    j = partners[position]
                    if point_sets_interact(points_i, collection[j].points, r):
                        tau[i] += 1
                        tau[j] += 1
                elapsed = time.perf_counter() - started
                report.serial_seconds += elapsed
                round_max = max(round_max, elapsed)
            report.barrier_seconds += round_max


def parallel_simple_grid(collection: ObjectCollection, r: float, cores: int) -> MIOResult:
    """Parallel SG: serial grid build, hash-partitioned per-object scoring.

    Hash partitioning balances only when tasks cost alike; skewed data makes
    per-object scoring costs vary widely, which is what limits SG's scaling
    in Fig. 9.
    """
    algorithm = SimpleGridAlgorithm(collection)
    build_seconds = algorithm.build(r)
    tau = [0] * collection.n
    chunks = hash_partition(collection.n, cores)
    report = CoreReport(cores)
    with gc_paused():
        for core, chunk in enumerate(chunks):
            started = time.perf_counter()
            for oid in chunk:
                tau[oid] = algorithm._score(oid, r)
            elapsed = time.perf_counter() - started
            report.per_core_seconds[core] += elapsed
            report.serial_seconds += elapsed
    report.barrier_seconds += build_seconds
    report.serial_seconds += build_seconds
    winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
    return MIOResult(
        algorithm="sg-parallel",
        r=r,
        winner=winner,
        score=tau[winner],
        phases={"build_and_scoring": report.makespan},
        counters={"cores": cores},
        memory_bytes=algorithm.memory_bytes(),
        extra={"serial:build_and_scoring": report.serial_seconds},
    )
