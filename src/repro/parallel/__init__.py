"""Parallel MIO query processing (Section IV of the paper).

* :mod:`repro.parallel.partitioning` -- multi-way number partitioning
  (Theorem 3 shows optimal balancing is NP-complete, so the paper uses
  greedy heuristics) and the Eq. (3) cost model.
* :mod:`repro.parallel.plans`        -- per-phase partitioning plans:
  LB-greedy-d / LB-hash-p for lower-bounding, UB-greedy-p / UB-greedy-d
  for upper-bounding, the point-splitting plan for verification.
* :mod:`repro.parallel.executor`     -- a deterministic simulated-makespan
  executor (the measurement device for Figs. 8/9 and Table III; see
  DESIGN.md §5) and a real-thread executor for functional parity.
* :mod:`repro.parallel.engine`       -- the parallel engine plus parallel
  renditions of the NL and SG competitors.
"""

from repro.parallel.engine import ParallelMIOEngine, parallel_nested_loop, parallel_simple_grid
from repro.parallel.executor import CoreReport, SimulatedExecutor, ThreadExecutor
from repro.parallel.partitioning import (
    greedy_partition,
    hash_partition,
    karmarkar_karp_partition,
    load_balance_ratio,
    streaming_greedy_partition,
    upper_bounding_group_cost,
)

__all__ = [
    "CoreReport",
    "ParallelMIOEngine",
    "SimulatedExecutor",
    "ThreadExecutor",
    "greedy_partition",
    "hash_partition",
    "karmarkar_karp_partition",
    "load_balance_ratio",
    "parallel_nested_loop",
    "parallel_simple_grid",
    "streaming_greedy_partition",
    "upper_bounding_group_cost",
]
