"""Multi-way number partitioning heuristics and the Eq. (3) cost model.

Theorem 3 of the paper reduces optimal load balancing to multi-way number
partitioning [24], which is NP-complete; the paper therefore assigns work
greedily.  This module provides:

* :func:`streaming_greedy_partition` -- the paper's scheme: scan items in
  their given order and assign each to the currently least-loaded core
  (O(n log t) with a heap).
* :func:`greedy_partition` -- the classic LPT variant (sort by weight
  first), included for comparison in the partitioning ablation.
* :func:`karmarkar_karp_partition` -- the largest-differencing method,
  the strongest polynomial heuristic, as a quality yardstick in tests.
* :func:`hash_partition` -- round-robin, the "simple hash-partitioning"
  the paper's SG and LB-hash-p use.
* :func:`upper_bounding_group_cost` -- the Eq. (3) cost of handling one
  key group ``P_{i,K}`` in upper-bounding: a group whose cell still needs
  its adjacent-union bitset pays ``3^d`` bitset operations, an already
  computed one pays a single OR; both pay the per-point labeling cost
  (omitted when labels are reused).
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

Assignment = List[List[int]]


def _validate(n_parts: int) -> None:
    if n_parts < 1:
        raise ValueError("need at least one part")


def streaming_greedy_partition(
    weights: Sequence[float], n_parts: int
) -> Tuple[Assignment, List[float]]:
    """Assign each item (in order) to the least-loaded part.

    Returns ``(parts, loads)`` where ``parts[c]`` lists item indices given
    to core ``c`` in arrival order.
    """
    _validate(n_parts)
    parts: Assignment = [[] for _ in range(n_parts)]
    loads = [0.0] * n_parts
    heap = [(0.0, core) for core in range(n_parts)]
    heapq.heapify(heap)
    for index, weight in enumerate(weights):
        load, core = heapq.heappop(heap)
        parts[core].append(index)
        load += float(weight)
        loads[core] = load
        heapq.heappush(heap, (load, core))
    return parts, loads


def greedy_partition(weights: Sequence[float], n_parts: int) -> Tuple[Assignment, List[float]]:
    """LPT: sort items by weight descending, then assign greedily."""
    _validate(n_parts)
    order = sorted(range(len(weights)), key=lambda index: -float(weights[index]))
    parts: Assignment = [[] for _ in range(n_parts)]
    loads = [0.0] * n_parts
    heap = [(0.0, core) for core in range(n_parts)]
    heapq.heapify(heap)
    for index in order:
        load, core = heapq.heappop(heap)
        parts[core].append(index)
        load += float(weights[index])
        loads[core] = load
        heapq.heappush(heap, (load, core))
    return parts, loads


def hash_partition(count: int, n_parts: int) -> Assignment:
    """Round-robin assignment of ``count`` items to ``n_parts`` parts."""
    _validate(n_parts)
    parts: Assignment = [[] for _ in range(n_parts)]
    for index in range(count):
        parts[index % n_parts].append(index)
    return parts


def static_block_partition(count: int, n_parts: int) -> Assignment:
    """Contiguous near-equal blocks (OpenMP static scheduling).

    This is how a plain ``#pragma omp parallel for`` splits a loop.  When
    item order correlates with cost -- as it does for spatial data laid out
    object-by-object -- contiguous blocks inherit the cost skew, which is
    precisely why the paper's parallel NL balances poorly.
    """
    _validate(n_parts)
    base, extra = divmod(count, n_parts)
    parts: Assignment = []
    start = 0
    for part in range(n_parts):
        size = base + (1 if part < extra else 0)
        parts.append(list(range(start, start + size)))
        start += size
    return parts


def karmarkar_karp_partition(
    weights: Sequence[float], n_parts: int
) -> Tuple[Assignment, List[float]]:
    """Multi-way largest differencing (Karmarkar-Karp).

    Repeatedly merges the two partial solutions with the largest spread,
    pairing heaviest-with-lightest, until one solution remains.
    """
    _validate(n_parts)
    if not weights:
        return [[] for _ in range(n_parts)], [0.0] * n_parts
    # Each heap entry: (-spread, tiebreak, loads desc, item lists aligned with loads).
    heap = []
    for index, weight in enumerate(weights):
        loads = [float(weight)] + [0.0] * (n_parts - 1)
        items: List[List[int]] = [[index]] + [[] for _ in range(n_parts - 1)]
        heapq.heappush(heap, (-float(weight), index, loads, items))
    tiebreak = len(weights)
    while len(heap) > 1:
        _, _, loads_a, items_a = heapq.heappop(heap)
        _, _, loads_b, items_b = heapq.heappop(heap)
        # Pair the largest load of A with the smallest of B, and so on.
        merged = [
            (loads_a[position] + loads_b[n_parts - 1 - position],
             items_a[position] + items_b[n_parts - 1 - position])
            for position in range(n_parts)
        ]
        merged.sort(key=lambda entry: -entry[0])
        loads = [entry[0] for entry in merged]
        items = [entry[1] for entry in merged]
        spread = loads[0] - loads[-1]
        heapq.heappush(heap, (-spread, tiebreak, loads, items))
        tiebreak += 1
    _, _, loads, items = heap[0]
    return items, loads


def load_balance_ratio(loads: Sequence[float]) -> float:
    """max load / mean load (1.0 is perfect balance)."""
    loads = [float(load) for load in loads]
    if not loads or sum(loads) == 0.0:
        return 1.0
    mean = sum(loads) / len(loads)
    return max(loads) / mean


def upper_bounding_group_cost(
    group_size: int,
    needs_adjacent_union: bool,
    dimension: int,
    bitset_cost: float = 1.0,
    include_labeling: bool = True,
) -> float:
    """Eq. (3): the cost of one ``P_{i,K}`` group in upper-bounding.

    A group whose cell's adjacent-union bitset is not yet materialized pays
    ``3^d`` bitset operations (27 in 3-D) plus the labeling cost of its
    points; otherwise one bitset operation plus labeling.  With reused
    labels, labeling is skipped and the ``|P_{i,K}|`` term drops out.
    """
    neighborhood = 3 ** dimension
    base = neighborhood * bitset_cost if needs_adjacent_union else bitset_cost
    return base + (group_size if include_labeling else 0)
