"""Parallel stage implementations for the shared phase pipeline.

The parallel engine is the same :class:`~repro.core.pipeline.PhasePipeline`
as the serial engine with this stage set swapped in: each stage runs its
phase under the paper's partitioning schemes on the engine's
:class:`~repro.parallel.executor.SimulatedExecutor` (DESIGN.md §5) and
reports the simulated *makespan* of its schedule rather than wall-clock.
The stages therefore do their own time accounting (``timed = False``):
the makespan goes to ``PhaseStats`` and onto the phase span via
:func:`finish_phase_span`, and the serial cost of the same work lands in
``extra["serial:..."]`` so speedups can be computed.

Phase parallelization mirrors the paper exactly:

* grid mapping   -- points of each object hash-partitioned (barrier per
  object; parallelizing the object loop is NP-complete, Theorem 3);
* lower-bounding -- ``lb_strategy="greedy-d"`` (objects by ``|o_i.L|``,
  no synchronization) or ``"hash-p"`` (per-object key split with local
  bitsets merged at each object barrier);
* upper-bounding -- ``ub_strategy="greedy-p"`` (Eq. (3) cost-based key
  groups with single-core key ownership) or ``"greedy-d"`` (naive split
  of objects by point count);
* verification   -- best-first candidate loop with each candidate's point
  groups split across cores and local bitsets merged per candidate.

Inline (unretried) chunks trip the ``partition_task`` fault point; an
injected failure there -- like a task dying past the executor's retry
budget -- surfaces as the pipeline's fallback (see
:data:`~repro.parallel.engine.PARALLEL_PIPELINE`), which swaps in the
serial stage set mid-run.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.bitset.factory import resolve_backend
from repro.core.labels import PointLabels, labels_match_collection
from repro.core.pipeline import (
    BackendResolutionStage,
    PlanningStage,
    QueryContext,
    Stage,
    kth_largest,
)
from repro.core.query import MIOResult
from repro.core.verification import bits_of
from repro.errors import QueryTimeout
from repro.grid.bigrid import BIGrid
from repro.grid.keys import large_cell_width, small_cell_width
from repro.grid.large_grid import LargeGrid
from repro.grid.small_grid import SmallGrid
from repro.kernels import resolve_kernel
from repro.parallel.executor import CoreReport, gc_paused
from repro.parallel.partitioning import hash_partition
from repro.parallel.plans import (
    plan_lower_bounding_greedy_d,
    plan_upper_bounding_greedy_d,
    plan_upper_bounding_greedy_p,
    plan_verification_chunks,
)
from repro.shard.executor import ShardTimeout
from repro.shard.merge import merge_outcomes


def finish_phase_span(tracer, span, report: CoreReport) -> None:
    """Seal a parallel phase span so the trace matches ``phases``.

    The span's wall-clock measurement is replaced by the simulated
    makespan, and one child span per simulated core carries that core's
    charged load, so ``repro explain`` shows the schedule's balance.
    """
    span.set_duration(report.makespan)
    span.set_attributes(
        serial_seconds=report.serial_seconds,
        barrier_seconds=report.barrier_seconds,
        merge_seconds=report.merge_seconds,
    )
    # Barrier-accumulated phases charge rounds, not cores: their
    # per-core vector is all zeros and would only add noise.
    if tracer.enabled and any(report.per_core_seconds):
        for core, seconds in enumerate(report.per_core_seconds):
            tracer.record(f"core-{core}", seconds, core=core)


class ParallelStage(Stage):
    """Base for parallel phases: makespan accounting replaces the timer."""

    timed = False

    def seal(self, ctx: QueryContext, span, report: CoreReport) -> None:
        """Common epilogue: span makespan, phase time, serial cost."""
        finish_phase_span(ctx.tracer, span, report)
        ctx.stats.add_time(self.name, report.makespan)
        ctx.extra[f"serial:{self.name}"] = report.serial_seconds


class ParallelLabelInputStage(Stage):
    """Consume labels produced by earlier *serial* queries (Fig. 9
    "BIGrid-label"); the parallel engine never writes labels, because
    labeling requires the canonical serial access order."""

    trips_fault = False
    checks_deadline = False
    traced = False
    timed = False

    def active(self, ctx: QueryContext) -> bool:
        return ctx.label_store is not None

    def run(self, ctx: QueryContext, span) -> None:
        labels = ctx.label_store.get(ctx.ceil_r)
        if labels is not None and not labels_match_collection(labels, ctx.collection):
            labels = None  # stale store: relabeling is the serial engine's job
        ctx.labels = labels


class ParallelGridMappingStage(ParallelStage):
    """PARALLEL-GRID-MAPPING: hash-partition each object's points."""

    name = "grid_mapping"

    def run(self, ctx: QueryContext, span) -> None:
        bigrid, report = _parallel_grid_mapping(ctx.engine, ctx.r, ctx.labels)
        ctx.bigrid = bigrid
        self.seal(ctx, span, report)
        span.set_attributes(
            small_cells=len(bigrid.small_grid.cells),
            large_cells=len(bigrid.large_grid.cells),
            mapped_points=bigrid.mapped_points,
        )


class ParallelLowerBoundingStage(ParallelStage):
    """PARALLEL-LOWER-BOUNDING under the engine's ``lb_strategy``."""

    name = "lower_bounding"

    def span_attributes(self, ctx: QueryContext) -> Dict[str, str]:
        return {"strategy": ctx.engine.lb_strategy}

    def run(self, ctx: QueryContext, span) -> None:
        values, bitsets, report = _parallel_lower_bounding(
            ctx.engine, ctx.bigrid, ctx.labels
        )
        ctx.lower_values = values
        ctx.lower_bitsets = bitsets
        ctx.threshold = kth_largest(values, ctx.k)
        self.seal(ctx, span, report)
        span.set_attributes(tau_max_low=ctx.threshold)


class ParallelUpperBoundingStage(ParallelStage):
    """PARALLEL-UPPER-BOUNDING under the engine's ``ub_strategy``."""

    name = "upper_bounding"

    def span_attributes(self, ctx: QueryContext) -> Dict[str, str]:
        return {"strategy": ctx.engine.ub_strategy}

    def run(self, ctx: QueryContext, span) -> None:
        candidates, report = _parallel_upper_bounding(
            ctx.engine, ctx.bigrid, ctx.threshold, ctx.labels
        )
        ctx.candidates = candidates
        self.seal(ctx, span, report)
        span.set_attributes(candidates=len(candidates))


class ParallelVerificationStage(ParallelStage):
    """PARALLEL-VERIFICATION: per-candidate point groups split over cores."""

    name = "verification"

    def run(self, ctx: QueryContext, span) -> None:
        ranking, report, verified = _parallel_verification(
            ctx.engine, ctx.bigrid, ctx.candidates, ctx.r,
            ctx.lower_bitsets, ctx.labels, ctx.k,
        )
        ctx.ranking = ranking
        ctx.verified = verified
        ctx.notes["verification_path"] = "parallel-chunked"
        self.seal(ctx, span, report)
        span.set_attributes(settled=verified)


class ParallelFinalizeStage(Stage):
    """Assemble the parallel :class:`MIOResult` (makespan phases)."""

    trips_fault = False
    checks_deadline = False
    traced = False
    timed = False

    def run(self, ctx: QueryContext, span) -> None:
        ranking = ctx.ranking
        candidates = ctx.candidates
        winner, score = (
            ranking[0] if ranking else (candidates[0][1] if candidates else 0, 0)
        )
        ctx.result = MIOResult(
            algorithm="bigrid-parallel" if ctx.labels is None else "bigrid-label-parallel",
            r=ctx.r,
            winner=winner,
            score=score,
            topk=ranking if ctx.want_ranking else None,
            phases=ctx.stats.phases,
            counters={
                "cores": ctx.engine.cores,
                "candidates": len(candidates),
                "verified_objects": ctx.verified,
            },
            memory_bytes=ctx.bigrid.memory_bytes(),
            notes=ctx.notes,
            extra=ctx.extra,
        )


#: The parallel engine's stage set, consumed by
#: :data:`repro.parallel.engine.PARALLEL_PIPELINE`.
PARALLEL_STAGES: Tuple[Stage, ...] = (
    ParallelLabelInputStage(),
    ParallelGridMappingStage(),
    ParallelLowerBoundingStage(),
    ParallelUpperBoundingStage(),
    ParallelVerificationStage(),
    ParallelFinalizeStage(),
)


# ----------------------------------------------------------------------
# Sharded stages: real multiprocess execution (repro.shard)
# ----------------------------------------------------------------------


def _merge_paths(paths: List[str]) -> str:
    """One note value from per-shard path reports ("mixed" when they differ)."""
    unique = sorted(set(paths))
    if not unique:
        return "reference"
    return unique[0] if len(unique) == 1 else "mixed"


class ShardRouteStage(Stage):
    """Route the collection onto curve-contiguous shards with exact halos.

    The plan comes from the engine's :class:`~repro.shard.router.
    ShardPlanCache` — one routing pass per ``(ceil_r, shards, curve)``
    per engine lifetime, the shard analogue of the large-key cache tier.
    """

    name = "shard_route"
    trips_fault = False  # sharded fault injection is the "shard_task" point

    def span_attributes(self, ctx: QueryContext) -> Dict[str, str]:
        return {"curve": ctx.engine.curve}

    def run(self, ctx: QueryContext, span) -> None:
        engine = ctx.engine
        shards = ctx.shards if ctx.shards is not None else engine.shards
        plan = engine.plan_cache.get(ctx.collection, ctx.r, shards, engine.curve)
        ctx.shard_plan = plan
        ctx.stats.set_count("shards", plan.shards)
        ctx.stats.set_count("shard_halo_objects", plan.halo_objects)
        span.set_attributes(
            shards=plan.shards,
            halo_objects=plan.halo_objects,
            curve_bits=plan.bits,
            plan_cache_hits=engine.plan_cache.hits,
        )


class ShardExecuteStage(Stage):
    """Fan the per-shard phase chain out to the engine's process pool.

    Each worker runs grid mapping, lower/upper bounding, and best-first
    verification for its shard over shared-memory coordinates; retries,
    respawns, and the ``shard_task`` fault point live in the executor.
    A pre-verification deadline expiry inside a worker is re-raised here
    as :class:`QueryTimeout` (same contract as the serial boundary
    checkpoints); mid-verification expiry degrades at merge time.
    """

    name = "shard_execute"
    trips_fault = False

    def run(self, ctx: QueryContext, span) -> None:
        engine = ctx.engine
        plan = ctx.shard_plan
        timeout_ms = (
            ctx.deadline.remaining_ms() if ctx.deadline is not None else None
        )
        payloads = [
            {
                "shard": shard,
                "owned": [int(oid) for oid in plan.owned[shard]],
                "halo": [int(oid) for oid in plan.halo[shard]],
                "r": ctx.r,
                "k": ctx.k,
                "backend": ctx.resolved_backend,
                "kernel": ctx.kernel.name,
                "timeout_ms": timeout_ms,
            }
            for shard in range(plan.shards)
        ]
        try:
            outcomes = engine.shard_executor.run_query(
                payloads, retries=engine.retries, deadline=ctx.deadline
            )
        except ShardTimeout as exc:
            raise QueryTimeout(
                f"shard deadline expired during {exc.phase}", phase=exc.phase
            ) from exc
        ctx.shard_outcomes = outcomes
        ctx.notes["verification_path"] = _merge_paths(
            [outcome.verification_path for outcome in outcomes]
        )
        ctx.notes["lower_bound_path"] = _merge_paths(
            [outcome.lower_bound_path for outcome in outcomes]
        )
        if ctx.tracer.enabled:
            for outcome in outcomes:
                ctx.tracer.record(
                    f"shard-{outcome.shard}",
                    outcome.seconds,
                    shard=outcome.shard,
                    owned_objects=outcome.owned_objects,
                    halo_objects=outcome.halo_objects,
                    candidates=outcome.candidates,
                    verified=outcome.verified,
                )
        span.set_attributes(
            shards=len(outcomes),
            workers=engine.shard_executor.workers,
            inline=engine.shard_executor.inline,
        )


class ShardMergeStage(Stage):
    """Replay the serial best-first loop over the shards' answers.

    No boundary checkpoint: verification already ran, so an expired
    deadline from here on degrades to an anytime answer (the replay
    surfaces the settled prefix), mirroring the serial pipeline.
    """

    name = "shard_merge"
    trips_fault = False
    checks_deadline = False

    def run(self, ctx: QueryContext, span) -> None:
        merged = merge_outcomes(ctx.shard_outcomes, ctx.k)
        ctx.merged = merged
        ctx.stats.set_count("candidates_total", merged.candidates)
        ctx.stats.set_count("candidates_settled", merged.verified)
        ctx.stats.set_count("verified_objects", merged.verified)
        ctx.stats.set_count("early_terminated", int(merged.early_terminated))
        ctx.stats.set_count("verification_timed_out", int(merged.timed_out))
        span.set_attributes(
            candidates=merged.candidates,
            settled=merged.verified,
            timed_out=merged.timed_out,
        )


class ShardFinalizeStage(Stage):
    """Assemble the sharded :class:`MIOResult` (exact or anytime)."""

    trips_fault = False
    checks_deadline = False
    traced = False
    timed = False

    def run(self, ctx: QueryContext, span) -> None:
        merged = ctx.merged
        plan = ctx.shard_plan
        counters = dict(ctx.stats.counters)
        counters.update(
            {
                "cores": ctx.engine.cores,
                "shards": plan.shards,
                "candidates": merged.candidates,
                "verified_objects": merged.verified,
            }
        )
        memory = sum(outcome.memory_bytes for outcome in ctx.shard_outcomes)
        if merged.timed_out:
            ctx.result = self._anytime_result(ctx, counters, memory)
            return
        ranking = merged.ranking
        if not ranking:
            raise AssertionError(
                "sharded merge produced no answer for a non-empty collection"
            )
        winner, score = ranking[0]
        ctx.result = MIOResult(
            algorithm="bigrid-sharded",
            r=ctx.r,
            winner=winner,
            score=score,
            topk=ranking if ctx.want_ranking else None,
            phases=ctx.stats.phases,
            counters=counters,
            memory_bytes=memory,
            notes=ctx.notes,
            extra=ctx.extra,
        )

    @staticmethod
    def _anytime_result(ctx: QueryContext, counters, memory) -> MIOResult:
        """Anytime answer when a shard's verification was cut short.

        Same certificate as the serial engine's anytime path: the larger
        of the best settled exact score and the best Lemma-1 lower bound
        (here the max over the shards' per-owned-object maxima, which
        covers every object exactly once).
        """
        merged = ctx.merged
        ranking = merged.ranking
        best_lb_value, best_lb_oid = merged.best_lb
        if ranking and ranking[0][1] >= best_lb_value:
            winner, score = ranking[0]
        else:
            winner, score = best_lb_oid, best_lb_value
        notes = dict(ctx.notes)
        notes["anytime"] = "deadline expired during verification"
        notes["degraded_deadline"] = "verification"
        return MIOResult(
            algorithm="bigrid-sharded",
            r=ctx.r,
            winner=winner,
            score=score,
            topk=ranking if ctx.want_ranking and ranking else None,
            phases=ctx.stats.phases,
            counters=counters,
            memory_bytes=memory,
            exact=False,
            notes=notes,
            extra=ctx.extra,
        )


#: The sharded engine's stage set, consumed by
#: :data:`repro.parallel.engine.SHARDED_PIPELINE`.
SHARDED_STAGES: Tuple[Stage, ...] = (
    BackendResolutionStage(),
    # The parallel engine pins the plan before the pipeline runs; this
    # stage applies it (kernel resolution + plan notes + predictions)
    # before routing, so the per-shard payloads inherit the planned
    # kernel.  Inert without a planner.
    PlanningStage(),
    ShardRouteStage(),
    ShardExecuteStage(),
    ShardMergeStage(),
    ShardFinalizeStage(),
)


# ----------------------------------------------------------------------
# PARALLEL-GRID-MAPPING: hash-partition each object's points
# ----------------------------------------------------------------------


def _parallel_grid_mapping(
    engine, r: float, labels: Optional[PointLabels]
) -> Tuple[BIGrid, CoreReport]:
    collection = engine.collection
    bitset_cls, _ = resolve_backend(engine.backend)
    dimension = collection.dimension
    s_width = small_cell_width(r, dimension)
    l_width = large_cell_width(r)
    small_grid = SmallGrid(s_width, dimension, bitset_cls)
    large_grid = LargeGrid(l_width, dimension, bitset_cls)
    key_lists = [set() for _ in range(collection.n)]
    object_groups: List[Dict] = [{} for _ in range(collection.n)]

    report = CoreReport(engine.cores)
    with gc_paused():
        _map_objects(
            engine, collection, labels, small_grid, large_grid, key_lists,
            object_groups, s_width, l_width, report, r,
        )
    mapped_points = sum(
        len(points)
        for groups in object_groups
        for points in groups.values()
    )

    bigrid = BIGrid(
        collection, r, small_grid, large_grid, key_lists, object_groups, mapped_points
    )
    return bigrid, report


def _map_objects(
    engine, collection, labels, small_grid, large_grid, key_lists,
    object_groups, s_width, l_width, report, r,
) -> None:
    keys_provider = (
        engine.key_cache.provider(collection, math.ceil(r))
        if engine.key_cache is not None
        else None
    )
    kernel = resolve_kernel(engine.kernel)
    for obj in collection:
        oid = obj.oid
        if labels is not None:
            indices = np.nonzero(labels.grid_mask(oid))[0]
        else:
            indices = np.arange(obj.num_points)
        if len(indices) == 0:
            continue
        small_keys = kernel.cell_keys(obj.points[indices], s_width)
        if keys_provider is not None:
            large_keys = keys_provider(oid, indices)
        else:
            large_keys = kernel.cell_keys(obj.points[indices], l_width)
        chunks = hash_partition(len(indices), engine.cores)
        round_max = 0.0
        for core, chunk in enumerate(chunks):
            if not chunk:
                continue
            # Inline (unretried) chunk: an injected failure here is
            # handled by the pipeline-level serial fallback.
            faults.trip("partition_task", detail=("grid_mapping", oid, core))
            started = time.perf_counter()
            for position in chunk:
                point_index = int(indices[position])
                reached, first_oid = small_grid.add_point(oid, small_keys[position])
                if reached == 2:
                    key_lists[first_oid].add(small_keys[position])
                    key_lists[oid].add(small_keys[position])
                elif reached is not None and reached > 2:
                    key_lists[oid].add(small_keys[position])
                large_key = large_keys[position]
                large_grid.add_point(oid, large_key, point_index)
                object_groups[oid].setdefault(large_key, []).append(point_index)
            elapsed = time.perf_counter() - started
            report.serial_seconds += elapsed
            round_max = max(round_max, elapsed)
        report.barrier_seconds += round_max


# ----------------------------------------------------------------------
# PARALLEL-LOWER-BOUNDING
# ----------------------------------------------------------------------


def _parallel_lower_bounding(
    engine, bigrid: BIGrid, labels: Optional[PointLabels]
) -> Tuple[List[int], Optional[List], CoreReport]:
    keep_bitsets = labels is not None
    if engine.lb_strategy == "greedy-d":
        return _lower_bounding_greedy_d(engine, bigrid, keep_bitsets)
    return _lower_bounding_hash_p(engine, bigrid, keep_bitsets)


def _lower_bounding_greedy_d(
    engine, bigrid: BIGrid, keep_bitsets: bool
) -> Tuple[List[int], Optional[List], CoreReport]:
    """Objects split by ``|o_i.L|``; no synchronization, no merge."""
    plan = plan_lower_bounding_greedy_d(bigrid, engine.cores)
    small_grid = bigrid.small_grid
    values = [0] * bigrid.collection.n
    bitsets = [None] * bigrid.collection.n if keep_bitsets else None

    def make_task(oid: int):
        def task() -> None:
            union = 0
            for key in bigrid.key_lists[oid]:
                union |= small_grid.cells[key].bitset.to_int()
            cardinality = union.bit_count()
            values[oid] = cardinality - 1 if cardinality else 0
            if bitsets is not None and cardinality:
                bitsets[oid] = union
        return task

    tasks = [make_task(oid) for oid in range(bigrid.collection.n)]
    _, report = engine.executor.run(tasks, plan.assignment)
    return values, bitsets, report


def _lower_bounding_hash_p(
    engine, bigrid: BIGrid, keep_bitsets: bool
) -> Tuple[List[int], Optional[List], CoreReport]:
    """Per-object key split with per-core local bitsets merged at a barrier."""
    values = [0] * bigrid.collection.n
    bitsets = [None] * bigrid.collection.n if keep_bitsets else None
    report = CoreReport(engine.cores)

    with gc_paused():
        _hash_p_rounds(engine, bigrid, values, bitsets, report)
    return values, bitsets, report


def _hash_p_rounds(engine, bigrid, values, bitsets, report) -> None:
    small_grid = bigrid.small_grid
    for oid in range(bigrid.collection.n):
        keys = list(bigrid.key_lists[oid])
        if not keys:
            continue
        chunks = hash_partition(len(keys), engine.cores)
        locals_: List = [None] * engine.cores
        round_max = 0.0
        for core, chunk in enumerate(chunks):
            if not chunk:
                continue
            faults.trip("partition_task", detail=("lower_bounding", oid, core))
            started = time.perf_counter()
            union = 0
            for position in chunk:
                union |= small_grid.cells[keys[position]].bitset.to_int()
            locals_[core] = union
            elapsed = time.perf_counter() - started
            report.serial_seconds += elapsed
            round_max = max(round_max, elapsed)
        started = time.perf_counter()
        merged = 0
        for local in locals_:
            if local is not None:
                merged |= local
        cardinality = merged.bit_count()
        values[oid] = cardinality - 1 if cardinality else 0
        if bitsets is not None and cardinality:
            bitsets[oid] = merged
        merge_elapsed = time.perf_counter() - started
        report.serial_seconds += merge_elapsed
        report.barrier_seconds += round_max + merge_elapsed


# ----------------------------------------------------------------------
# PARALLEL-UPPER-BOUNDING
# ----------------------------------------------------------------------


def _parallel_upper_bounding(
    engine, bigrid: BIGrid, tau_max: int, labels: Optional[PointLabels]
) -> Tuple[List[Tuple[int, int]], CoreReport]:
    if engine.ub_strategy == "greedy-p":
        report, unions = _upper_bounding_greedy_p(engine, bigrid, labels)
    else:
        report, unions = _upper_bounding_greedy_d(engine, bigrid, labels)
    # Pruning + best-first sort stay serial (their cost is dominated by
    # the bounding work); charge them to the barrier.
    started = time.perf_counter()
    candidates = []
    for oid, union in enumerate(unions):
        cardinality = union.bit_count() if union is not None else 0
        upper = cardinality - 1 if cardinality else 0
        if upper >= tau_max:
            candidates.append((upper, oid))
    candidates.sort(key=lambda entry: (-entry[0], entry[1]))
    elapsed = time.perf_counter() - started
    report.barrier_seconds += elapsed
    report.serial_seconds += elapsed
    return candidates, report


def _upper_bounding_greedy_p(
    engine, bigrid: BIGrid, labels: Optional[PointLabels]
) -> Tuple[CoreReport, List]:
    """Eq. (3) cost-based group assignment with key ownership."""
    plan = plan_upper_bounding_greedy_p(
        bigrid, engine.cores, include_labeling=labels is None
    )
    large_grid = bigrid.large_grid
    #: local_unions[core][oid] -- per-core partial unions (big ints).
    local_unions: List[Dict[int, int]] = [{} for _ in range(engine.cores)]

    masks = (
        [labels.upper_mask(oid).tolist() for oid in range(bigrid.collection.n)]
        if labels is not None
        else None
    )

    def make_task(core: int, oid: int, key, point_indices):
        def task() -> None:
            if masks is not None and not any(masks[oid][i] for i in point_indices):
                return
            adjacent = large_grid.adjacent_union_int(key)
            local_unions[core][oid] = local_unions[core].get(oid, 0) | adjacent
        return task

    tasks = [
        make_task(core, oid, key, points)
        for (oid, key, points), core in zip(plan.tasks, plan.assignment)
    ]
    unions: List = [None] * bigrid.collection.n

    def merge() -> None:
        for core in range(engine.cores):
            for oid, partial in local_unions[core].items():
                if unions[oid] is None:
                    unions[oid] = partial
                else:
                    unions[oid] |= partial

    _, report = engine.executor.run(tasks, plan.assignment, merge=merge)
    return report, unions


def _upper_bounding_greedy_d(
    engine, bigrid: BIGrid, labels: Optional[PointLabels]
) -> Tuple[CoreReport, List]:
    """Naive competitor: whole objects assigned by point count."""
    plan = plan_upper_bounding_greedy_d(bigrid, engine.cores)
    large_grid = bigrid.large_grid
    unions: List = [None] * bigrid.collection.n

    def make_task(oid: int):
        def task() -> None:
            union = 0
            mask = labels.upper_mask(oid).tolist() if labels is not None else None
            for key, point_indices in bigrid.object_groups[oid].items():
                if mask is not None and not any(mask[i] for i in point_indices):
                    continue
                union |= large_grid.adjacent_union_int(key)
            if union:
                unions[oid] = union
        return task

    tasks = [make_task(oid) for oid in range(bigrid.collection.n)]
    _, report = engine.executor.run(tasks, plan.assignment)
    return report, unions


# ----------------------------------------------------------------------
# PARALLEL-VERIFICATION
# ----------------------------------------------------------------------


def _parallel_verification(
    engine,
    bigrid: BIGrid,
    candidates: List[Tuple[int, int]],
    r: float,
    lower_bitsets: Optional[List],
    labels: Optional[PointLabels],
    k: int = 1,
) -> Tuple[List[Tuple[int, int]], CoreReport, int]:
    r_squared = r * r
    report = CoreReport(engine.cores)
    use_verify_mask = labels is not None and (
        engine.label_reuse == "paper" or labels.r == r
    )

    with gc_paused():
        ranking, verified = _verify_rounds(
            engine, bigrid, candidates, r_squared, lower_bitsets, labels,
            use_verify_mask, report, k, resolve_kernel(engine.kernel),
        )
    return ranking, report, verified


def _verify_rounds(
    engine, bigrid, candidates, r_squared, lower_bitsets, labels,
    use_verify_mask, report, k, kernel,
):
    from heapq import heappush, heappushpop

    best_heap: List[Tuple[int, int]] = []  # (score, -oid), min-heap
    verified = 0
    for upper, oid in candidates:
        threshold = best_heap[0][0] if len(best_heap) >= k else -1
        if upper <= threshold:
            break
        verified += 1
        groups = bigrid.object_groups[oid]
        if use_verify_mask:
            mask = labels.verify_mask(oid).tolist()
            groups = {
                key: [p for p in points if mask[p]]
                for key, points in groups.items()
            }
            groups = {key: points for key, points in groups.items() if points}
        per_core = plan_verification_chunks(groups, engine.cores)
        seed = lower_bitsets[oid] if lower_bitsets is not None else None
        locals_: List = [None] * engine.cores
        round_max = 0.0
        for core, chunk_list in enumerate(per_core):
            if not chunk_list:
                continue
            faults.trip("partition_task", detail=("verification", oid, core))
            started = time.perf_counter()
            locals_[core] = _verify_chunks(
                bigrid, oid, chunk_list, r_squared, seed, kernel
            )
            elapsed = time.perf_counter() - started
            report.serial_seconds += elapsed
            round_max = max(round_max, elapsed)
        started = time.perf_counter()
        merged = (seed or 0) | (1 << oid)
        for local in locals_:
            if local is not None:
                merged |= local
        score = merged.bit_count() - 1
        merge_elapsed = time.perf_counter() - started
        report.serial_seconds += merge_elapsed
        report.barrier_seconds += round_max + merge_elapsed
        entry = (score, -oid)
        if len(best_heap) < k:
            heappush(best_heap, entry)
        elif entry > best_heap[0]:
            heappushpop(best_heap, entry)
    ranking = sorted(
        ((-neg_oid, score) for score, neg_oid in best_heap),
        key=lambda item: (-item[1], item[0]),
    )
    return ranking, verified


def _verify_chunks(
    bigrid: BIGrid,
    oid: int,
    chunk_list,
    r_squared: float,
    seed,
    kernel,
) -> int:
    """One core's share of a candidate's exact-score computation."""
    collection = bigrid.collection
    large_grid = bigrid.large_grid
    points = collection[oid].points
    confirmed = (seed or 0) | (1 << oid)
    for key, point_indices in chunk_list:
        for point_index in point_indices:
            pending = large_grid.adjacent_union_int(key) & ~confirmed
            if not pending:
                continue
            remaining = bits_of(pending)
            point = points[point_index]
            for cell in large_grid.cells[key].neighbor_cells:
                for candidate_oid in remaining.intersection(cell.postings):
                    candidate_points = cell.posting_points(
                        candidate_oid, collection[candidate_oid].points
                    )
                    if kernel.any_within(candidate_points, point, r_squared):
                        confirmed |= 1 << candidate_oid
                        remaining.discard(candidate_oid)
                if not remaining:
                    break
    return confirmed
