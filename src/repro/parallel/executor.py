"""Executors for partitioned work.

:class:`SimulatedExecutor` is the measurement device behind Figs. 8/9 and
Table III.  CPython's GIL makes real-thread speedups unobservable for CPU
work, but the paper's parallel contributions are *partitioning schemes*,
and their quality is exactly the makespan of the schedule they produce.
The simulator runs every task serially (answers stay exact and
deterministic), measures each task's wall-clock cost, charges it to the
core the plan chose, and reports

    makespan = max over cores of (sum of charged task costs) + merge cost,

with barrier semantics available for phases that synchronize between
rounds.  No constants are invented: every charged cost is a measured
execution, and merge work is really executed and timed.

:class:`ThreadExecutor` runs the same plans on real threads, used by tests
to show the partitioned computation is correct under true concurrency.
"""

from __future__ import annotations

import gc
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

Task = Callable[[], Any]


@contextmanager
def gc_paused():
    """Suspend the cyclic GC while measuring a schedule.

    A collection pause landing inside one micro-task would be charged to a
    single simulated core and distort the makespan; deferring collection to
    the end of the phase keeps per-task costs attributable.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@dataclass
class CoreReport:
    """Accumulated schedule of one simulated phase (or several, merged)."""

    cores: int
    per_core_seconds: List[float] = field(default_factory=list)
    merge_seconds: float = 0.0
    #: Sum over completed barrier rounds of the round's max core time.
    barrier_seconds: float = 0.0
    serial_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.per_core_seconds:
            self.per_core_seconds = [0.0] * self.cores

    @property
    def makespan(self) -> float:
        """The simulated parallel wall-clock of the schedule."""
        return self.barrier_seconds + max(self.per_core_seconds) + self.merge_seconds

    def speedup(self) -> float:
        """Serial time divided by makespan (>= 1 means the plan helps)."""
        makespan = self.makespan
        return self.serial_seconds / makespan if makespan > 0 else 1.0

    def merge_with(self, other: "CoreReport") -> "CoreReport":
        """Chain two phases: makespans add, core loads concatenate by phase."""
        combined = CoreReport(self.cores)
        combined.barrier_seconds = self.makespan + other.makespan
        combined.per_core_seconds = [0.0] * self.cores
        combined.serial_seconds = self.serial_seconds + other.serial_seconds
        return combined


class SimulatedExecutor:
    """Serial execution with per-core cost accounting."""

    def __init__(self, cores: int) -> None:
        if cores < 1:
            raise ValueError("need at least one core")
        self.cores = cores

    def run(
        self,
        tasks: Sequence[Task],
        assignment: Sequence[int],
        merge: Optional[Task] = None,
    ) -> tuple:
        """Run one fan-out/merge round.

        ``assignment[i]`` is the core charged for ``tasks[i]``.  Returns
        ``(results, report)`` with results in task order.
        """
        if len(tasks) != len(assignment):
            raise ValueError("every task needs a core assignment")
        report = CoreReport(self.cores)
        results = []
        with gc_paused():
            for task, core in zip(tasks, assignment):
                started = time.perf_counter()
                results.append(task())
                elapsed = time.perf_counter() - started
                report.per_core_seconds[core] += elapsed
                report.serial_seconds += elapsed
            if merge is not None:
                started = time.perf_counter()
                merge()
                report.merge_seconds = time.perf_counter() - started
                report.serial_seconds += report.merge_seconds
        return results, report

    def run_rounds(
        self,
        rounds: Sequence[tuple],
    ) -> tuple:
        """Run barrier-separated rounds: ``rounds[i] = (tasks, assignment, merge)``.

        The makespan of each round is its max core time plus its merge; the
        phase makespan is the sum over rounds (cores idle at each barrier).
        Returns ``(per_round_results, report)``.
        """
        report = CoreReport(self.cores)
        all_results = []
        for tasks, assignment, merge in rounds:
            round_results, round_report = self.run(tasks, assignment, merge)
            all_results.append(round_results)
            report.barrier_seconds += round_report.makespan
            report.serial_seconds += round_report.serial_seconds
        return all_results, report


class ThreadExecutor:
    """Real threads running the same per-core plans.

    Used to demonstrate functional correctness of the partitioned
    computation; wall-clock speedup is not expected under the GIL and the
    report's makespan here is simply the measured wall time.
    """

    def __init__(self, cores: int) -> None:
        if cores < 1:
            raise ValueError("need at least one core")
        self.cores = cores

    def run(
        self,
        tasks: Sequence[Task],
        assignment: Sequence[int],
        merge: Optional[Task] = None,
    ) -> tuple:
        if len(tasks) != len(assignment):
            raise ValueError("every task needs a core assignment")
        per_core: List[List[int]] = [[] for _ in range(self.cores)]
        for index, core in enumerate(assignment):
            per_core[core].append(index)
        results: List[Any] = [None] * len(tasks)

        def run_core(task_indices: List[int]) -> None:
            for index in task_indices:
                results[index] = tasks[index]()

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.cores) as pool:
            list(pool.map(run_core, per_core))
        if merge is not None:
            merge()
        elapsed = time.perf_counter() - started
        report = CoreReport(self.cores)
        report.per_core_seconds = [elapsed] + [0.0] * (self.cores - 1)
        report.serial_seconds = elapsed
        return results, report
