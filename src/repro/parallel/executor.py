"""Executors for partitioned work.

:class:`SimulatedExecutor` is the measurement device behind Figs. 8/9 and
Table III.  CPython's GIL makes real-thread speedups unobservable for CPU
work, but the paper's parallel contributions are *partitioning schemes*,
and their quality is exactly the makespan of the schedule they produce.
The simulator runs every task serially (answers stay exact and
deterministic), measures each task's wall-clock cost, charges it to the
core the plan chose, and reports

    makespan = max over cores of (sum of charged task costs) + merge cost,

with barrier semantics available for phases that synchronize between
rounds.  No constants are invented: every charged cost is a measured
execution, and merge work is really executed and timed.

:class:`ThreadExecutor` runs the same plans on real threads, used by tests
to show the partitioned computation is correct under true concurrency.

Both executors share one task-failure contract: each task execution first
trips the ``"partition_task"`` fault-injection point (with the task index
as detail), a failing task is retried up to ``retries`` times, and a task
still failing afterwards raises :class:`~repro.errors.PartitionTaskError`
carrying the failing task's index — never a half-filled result list.  The
parallel engine catches that error and falls back to the serial path.
"""

from __future__ import annotations

import gc
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro import faults
from repro.errors import InvalidQueryError, PartitionTaskError

Task = Callable[[], Any]


def run_task_with_retries(task: Task, index: int, retries: int) -> Any:
    """Execute one partition task under the shared failure contract.

    Retried tasks in this codebase are idempotent (their writes are unions
    or idempotent assignments into per-core slots), so re-running a task
    whose failure interrupted a partial mutation is safe.
    """
    attempt = 0
    while True:
        try:
            faults.trip("partition_task", detail=index)
            return task()
        except PartitionTaskError:
            raise
        except Exception as exc:
            from repro.obs import metrics as obs_metrics

            attempt += 1
            if attempt > retries:
                obs_metrics.counter(
                    "repro_partition_task_failures_total",
                    "Partition tasks abandoned after exhausting their retry budget",
                ).inc()
                raise PartitionTaskError(
                    f"partition task {index} failed after {attempt} attempt(s): {exc}",
                    task_index=index,
                    attempts=attempt,
                ) from exc
            obs_metrics.counter(
                "repro_partition_task_retries_total",
                "Partition task re-executions after a failure",
            ).inc()


@contextmanager
def gc_paused():
    """Suspend the cyclic GC while measuring a schedule.

    A collection pause landing inside one micro-task would be charged to a
    single simulated core and distort the makespan; deferring collection to
    the end of the phase keeps per-task costs attributable.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@dataclass
class CoreReport:
    """Accumulated schedule of one simulated phase (or several, merged)."""

    cores: int
    per_core_seconds: List[float] = field(default_factory=list)
    merge_seconds: float = 0.0
    #: Sum over completed barrier rounds of the round's max core time.
    barrier_seconds: float = 0.0
    serial_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.per_core_seconds:
            self.per_core_seconds = [0.0] * self.cores

    @property
    def makespan(self) -> float:
        """The simulated parallel wall-clock of the schedule."""
        return self.barrier_seconds + max(self.per_core_seconds) + self.merge_seconds

    def speedup(self) -> float:
        """Serial time divided by makespan (>= 1 means the plan helps)."""
        makespan = self.makespan
        return self.serial_seconds / makespan if makespan > 0 else 1.0

    def merge_with(self, other: "CoreReport") -> "CoreReport":
        """Chain two phases: makespans add, core loads concatenate by phase."""
        combined = CoreReport(self.cores)
        combined.barrier_seconds = self.makespan + other.makespan
        combined.per_core_seconds = [0.0] * self.cores
        combined.serial_seconds = self.serial_seconds + other.serial_seconds
        return combined


class SimulatedExecutor:
    """Serial execution with per-core cost accounting.

    ``retries`` is the shared task-failure budget: every task gets that many
    re-executions before the round aborts with :class:`PartitionTaskError`.
    """

    def __init__(self, cores: int, retries: int = 0) -> None:
        if cores < 1:
            raise InvalidQueryError("need at least one core")
        if retries < 0:
            raise InvalidQueryError("retries must be >= 0")
        self.cores = cores
        self.retries = retries

    def run(
        self,
        tasks: Sequence[Task],
        assignment: Sequence[int],
        merge: Optional[Task] = None,
    ) -> tuple:
        """Run one fan-out/merge round.

        ``assignment[i]`` is the core charged for ``tasks[i]``.  Returns
        ``(results, report)`` with results in task order.
        """
        if len(tasks) != len(assignment):
            raise InvalidQueryError("every task needs a core assignment")
        report = CoreReport(self.cores)
        results = []
        with gc_paused():
            for index, (task, core) in enumerate(zip(tasks, assignment)):
                started = time.perf_counter()
                try:
                    results.append(run_task_with_retries(task, index, self.retries))
                finally:
                    # Retried attempts are real work: charge them all.
                    elapsed = time.perf_counter() - started
                    report.per_core_seconds[core] += elapsed
                    report.serial_seconds += elapsed
            if merge is not None:
                started = time.perf_counter()
                merge()
                report.merge_seconds = time.perf_counter() - started
                report.serial_seconds += report.merge_seconds
        return results, report

    def run_rounds(
        self,
        rounds: Sequence[tuple],
    ) -> tuple:
        """Run barrier-separated rounds: ``rounds[i] = (tasks, assignment, merge)``.

        The makespan of each round is its max core time plus its merge; the
        phase makespan is the sum over rounds (cores idle at each barrier).
        Returns ``(per_round_results, report)``.
        """
        report = CoreReport(self.cores)
        all_results = []
        for tasks, assignment, merge in rounds:
            round_results, round_report = self.run(tasks, assignment, merge)
            all_results.append(round_results)
            report.barrier_seconds += round_report.makespan
            report.serial_seconds += round_report.serial_seconds
        return all_results, report


class ThreadExecutor:
    """Real threads running the same per-core plans.

    Used to demonstrate functional correctness of the partitioned
    computation; wall-clock speedup is not expected under the GIL and the
    report's makespan here is simply the measured wall time.

    A task exception no longer aborts the pool with results half-filled:
    each worker captures its tasks' failures (after exhausting ``retries``),
    every other task still runs, and the round then raises the
    :class:`PartitionTaskError` of the lowest failing task index so the
    outcome is deterministic regardless of thread interleaving.
    """

    def __init__(self, cores: int, retries: int = 0) -> None:
        if cores < 1:
            raise InvalidQueryError("need at least one core")
        if retries < 0:
            raise InvalidQueryError("retries must be >= 0")
        self.cores = cores
        self.retries = retries

    def run(
        self,
        tasks: Sequence[Task],
        assignment: Sequence[int],
        merge: Optional[Task] = None,
    ) -> tuple:
        if len(tasks) != len(assignment):
            raise InvalidQueryError("every task needs a core assignment")
        per_core: List[List[int]] = [[] for _ in range(self.cores)]
        for index, core in enumerate(assignment):
            per_core[core].append(index)
        results: List[Any] = [None] * len(tasks)
        failures: List[PartitionTaskError] = []

        def run_core(task_indices: List[int]) -> None:
            for index in task_indices:
                try:
                    results[index] = run_task_with_retries(
                        tasks[index], index, self.retries
                    )
                except PartitionTaskError as error:
                    failures.append(error)  # list.append is atomic under the GIL

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.cores) as pool:
            list(pool.map(run_core, per_core))
        if failures:
            raise min(failures, key=lambda error: error.task_index)
        if merge is not None:
            merge()
        elapsed = time.perf_counter() - started
        report = CoreReport(self.cores)
        report.per_core_seconds = [elapsed] + [0.0] * (self.cores - 1)
        report.serial_seconds = elapsed
        return results, report
