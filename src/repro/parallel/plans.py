"""Partitioning plans for each phase of parallel MIO processing (Section IV).

A plan decides, before execution, which core handles which unit of work:

* **Grid mapping** -- hash-partition each object's points over the cores
  (objects stay sequential; Theorem 3 rules out balanced object-level
  splitting with guarantees).
* **Lower-bounding** -- either split the *objects* by key-list size with
  the streaming greedy heuristic (LB-greedy-d: no synchronization, but
  only heuristic balance) or split each object's *key list* round-robin
  (LB-hash-p: perfect balance per object, but local bitsets must be
  merged at every object barrier).
* **Upper-bounding** -- UB-greedy-p assigns key groups ``P_{i,K}`` by the
  Eq. (3) cost model with the constraint that one key is owned by exactly
  one core (so adjacent-union bitsets need no synchronization);
  UB-greedy-d is the naive competitor that splits objects by point count.
* **Verification** -- split every ``P_{i,K}`` into ``t`` near-equal chunks
  so each core sees the same mix of cells (the paper's heuristic for the
  phase whose pruning makes costs unpredictable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.grid.bigrid import BIGrid
from repro.grid.keys import Key
from repro.parallel.partitioning import (
    streaming_greedy_partition,
    upper_bounding_group_cost,
)

#: One upper-bounding work unit: (oid, large-grid key, point indices).
GroupTask = Tuple[int, Key, List[int]]


@dataclass
class ObjectPlan:
    """Object-level plan: task i is object i; ``assignment[i]`` its core."""

    assignment: List[int]
    loads: List[float]


def plan_objects_by_weight(weights: Sequence[float], cores: int) -> ObjectPlan:
    """Streaming greedy assignment of objects by the given weights."""
    parts, loads = streaming_greedy_partition(weights, cores)
    assignment = [0] * len(weights)
    for core, indices in enumerate(parts):
        for index in indices:
            assignment[index] = core
    return ObjectPlan(assignment=assignment, loads=loads)


def plan_lower_bounding_greedy_d(bigrid: BIGrid, cores: int) -> ObjectPlan:
    """LB-greedy-d: objects weighted by their key-list size ``|o_i.L|``."""
    weights = [float(len(keys)) for keys in bigrid.key_lists]
    return plan_objects_by_weight(weights, cores)


def plan_upper_bounding_greedy_d(bigrid: BIGrid, cores: int) -> ObjectPlan:
    """UB-greedy-d: the naive competitor, objects weighted by ``|P_i|``."""
    weights = [float(obj.num_points) for obj in bigrid.collection]
    return plan_objects_by_weight(weights, cores)


@dataclass
class GroupPlan:
    """Group-level plan for UB-greedy-p."""

    tasks: List[GroupTask]
    assignment: List[int]
    loads: List[float]


def plan_upper_bounding_greedy_p(
    bigrid: BIGrid,
    cores: int,
    include_labeling: bool = True,
) -> GroupPlan:
    """UB-greedy-p: Eq. (3) cost-based greedy with key-ownership.

    Groups arrive in object order (the order Algorithm 5 processes them);
    the first group touching a key is charged the adjacent-union cost and
    pins the key to its core, so later groups with the same key follow it
    (no synchronization on ``b_adj``).
    """
    dimension = bigrid.collection.dimension
    tasks: List[GroupTask] = []
    costs: List[float] = []
    seen_keys: Dict[Key, int] = {}
    for oid in range(bigrid.collection.n):
        for key, point_indices in bigrid.object_groups[oid].items():
            cost = upper_bounding_group_cost(
                len(point_indices),
                needs_adjacent_union=key not in seen_keys,
                dimension=dimension,
                include_labeling=include_labeling,
            )
            seen_keys.setdefault(key, len(tasks))
            tasks.append((oid, key, point_indices))
            costs.append(cost)

    loads = [0.0] * cores
    assignment = [0] * len(tasks)
    key_owner: Dict[Key, int] = {}
    for index, (oid, key, _points) in enumerate(tasks):
        owner = key_owner.get(key)
        if owner is None:
            # Least-loaded core takes the group and becomes the key's owner.
            owner = min(range(cores), key=lambda core: loads[core])
            key_owner[key] = owner
        assignment[index] = owner
        loads[owner] += costs[index]
    return GroupPlan(tasks=tasks, assignment=assignment, loads=loads)


def split_points_round_robin(point_indices: Sequence[int], cores: int) -> List[List[int]]:
    """Split one ``P_{i,K}`` into ``cores`` near-equal chunks (may be empty)."""
    chunks: List[List[int]] = [[] for _ in range(cores)]
    for position, point_index in enumerate(point_indices):
        chunks[position % cores].append(point_index)
    return chunks


def plan_verification_chunks(
    groups: Dict[Key, List[int]],
    cores: int,
) -> List[List[Tuple[Key, List[int]]]]:
    """Per-core (key, point chunk) lists for one candidate's verification.

    Every key group is split across all cores, so each core sees a uniform
    mix of dense and sparse cells; groups smaller than ``t`` go to the core
    with the fewest points so far.
    """
    per_core: List[List[Tuple[Key, List[int]]]] = [[] for _ in range(cores)]
    per_core_points = [0] * cores
    for key, point_indices in groups.items():
        if len(point_indices) < cores:
            for point_index in point_indices:
                core = min(range(cores), key=lambda c: per_core_points[c])
                per_core[core].append((key, [point_index]))
                per_core_points[core] += 1
            continue
        for core, chunk in enumerate(split_points_round_robin(point_indices, cores)):
            if chunk:
                per_core[core].append((key, chunk))
                per_core_points[core] += len(chunk)
    return per_core
