"""Structured error taxonomy for the query path.

Every public failure in the repository derives from :class:`ReproError`, so
callers (the CLI, the serving layer, retry loops) can catch one root
type and branch on the subclass — or on ``exit_code``, which maps each
class to a distinct nonzero process exit status, or on ``http_status``,
which maps each class to the HTTP response the query service returns.

The subclasses additionally inherit the closest builtin exception
(``ValueError``, ``TimeoutError``, ``RuntimeError``) so that pre-taxonomy
callers catching builtins keep working: the taxonomy is an upgrade, not a
breaking change.

Taxonomy
--------

``ReproError``                 root; never raised directly            (10, 500)
├── ``InvalidQueryError``      bad query/config input (ValueError)    (11, 400)
├── ``CorruptDataError``       unreadable/inconsistent data (ValueError) (12, 422)
├── ``QueryTimeout``           deadline expired (TimeoutError)        (13, 504)
├── ``BackendUnavailableError`` no usable bitset backend (ValueError) (14, 503)
├── ``PartitionTaskError``     a parallel task failed after retries   (15, 500)
├── ``InjectedFault``          raised only by the fault harness       (16, 500)
└── ``ServiceOverloadedError`` request shed by admission control      (17, 429)
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Root of all public failures raised by this package."""

    #: Distinct nonzero process exit status for the CLI (see ``repro.cli``).
    exit_code: int = 10
    #: HTTP status the query service maps this failure to (see
    #: ``repro.service``); 500 marks an unexpected internal failure.
    http_status: int = 500


class InvalidQueryError(ReproError, ValueError):
    """A query or configuration parameter is structurally invalid."""

    exit_code = 11
    http_status = 400


class CorruptDataError(ReproError, ValueError):
    """Stored or supplied data cannot be parsed or is internally inconsistent."""

    exit_code = 12
    http_status = 422


class QueryTimeout(ReproError, TimeoutError):
    """A query deadline expired in a phase that cannot return an anytime answer."""

    exit_code = 13
    http_status = 504

    def __init__(
        self,
        message: str,
        phase: Optional[str] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        #: Pipeline phase whose deadline check fired (e.g. ``"lower_bounding"``).
        self.phase = phase
        #: Seconds spent when the expiry was detected (None if unknown).
        self.elapsed = elapsed


class BackendUnavailableError(ReproError, ValueError):
    """No bitset backend (requested or fallback) could be resolved."""

    exit_code = 14
    http_status = 503


class PartitionTaskError(ReproError, RuntimeError):
    """A partitioned parallel task kept failing after all retries."""

    exit_code = 15
    http_status = 500

    def __init__(
        self,
        message: str,
        task_index: Optional[int] = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        #: Index of the failing task within its fan-out round.
        self.task_index = task_index
        #: How many executions (first try + retries) were attempted.
        self.attempts = attempts


class InjectedFault(ReproError, RuntimeError):
    """A deliberate failure raised by :mod:`repro.faults` during testing."""

    exit_code = 16
    http_status = 500

    def __init__(self, message: str, point: Optional[str] = None) -> None:
        super().__init__(message)
        #: Name of the injection point that fired.
        self.point = point


class ServiceOverloadedError(ReproError, RuntimeError):
    """The query service shed this request (admission queue full or draining).

    Raised server-side when admission control rejects a request, and
    client-side by :class:`~repro.service.client.ServiceClient` once its
    retry budget is exhausted.  ``retry_after`` carries the server's
    backoff hint in seconds (the HTTP ``Retry-After`` header).
    """

    exit_code = 17
    http_status = 429

    def __init__(self, message: str, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        #: Suggested seconds to wait before retrying (None if the server
        #: offered no hint).
        self.retry_after = retry_after
