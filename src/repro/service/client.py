"""A bundled, retry-aware client for the hardened query service.

``http.client`` only (the service stack is stdlib end to end).  The
client is the other half of the backpressure contract: when the service
sheds with 429/503 it names a ``Retry-After``, and :class:`ServiceClient`
honors it -- sleeping at least that long, plus jittered exponential
backoff on top -- instead of hammering an overloaded server.  Error
envelopes map back onto the repro error taxonomy, so callers see the
same exception types in-process and over the wire.

Clock, sleep, and RNG are injectable; the retry schedule is unit-tested
with a fake sleeper and never actually waits.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Callable, Dict, List, Optional

from repro.errors import (
    BackendUnavailableError,
    CorruptDataError,
    InjectedFault,
    InvalidQueryError,
    PartitionTaskError,
    QueryTimeout,
    ReproError,
    ServiceOverloadedError,
)
from repro.obs.telemetry import new_trace_id

#: Wire name -> exception class, the inverse of the service's error
#: envelope (``{"error": ClassName, ...}``).
_ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (
        InvalidQueryError,
        CorruptDataError,
        QueryTimeout,
        BackendUnavailableError,
        PartitionTaskError,
        InjectedFault,
        ServiceOverloadedError,
    )
}

#: Statuses worth retrying: shed (429), draining/unavailable (503), and
#: gateway timeout (504).  4xx input errors and 200s never retry.
RETRYABLE_STATUSES = frozenset({429, 503, 504})


class ServiceError(ReproError, RuntimeError):
    """A service-side error that has no taxonomy class (e.g. a raw 500).

    Inherits the root's generic exit code / status -- this is the "the
    server told us something we don't have a name for" bucket.
    """

    def __init__(self, message: str, status: int) -> None:
        super().__init__(message)
        self.status = status


def _decode_error(status: int, payload: dict) -> ReproError:
    """The taxonomy exception encoded by one error envelope."""
    name = payload.get("error", "")
    message = payload.get("message", f"HTTP {status}")
    cls = _ERROR_CLASSES.get(name)
    if cls is ServiceOverloadedError:
        return ServiceOverloadedError(message, retry_after=payload.get("retry_after_s"))
    if cls is not None:
        return cls(message)
    return ServiceError(message, status)


class ServiceClient:
    """HTTP client with jittered retries that honor ``Retry-After``."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 10.0,
        max_retries: int = 3,
        backoff_s: float = 0.1,
        max_backoff_s: float = 2.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        #: Retry telemetry: attempts beyond the first, and total slept.
        self.retries = 0
        self.slept_s = 0.0
        #: The trace id of the most recent response (from ``X-Trace-Id``
        #: or the body) -- quote it when reporting a service problem.
        self.last_trace_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def query(
        self, r: float, k: int = 1, timeout_ms: Optional[float] = None
    ) -> dict:
        """One MIO query; returns the decoded answer payload."""
        body: Dict[str, object] = {"r": r, "k": k}
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self.request("POST", "/query", body)

    def topk(self, r: float, k: int, timeout_ms: Optional[float] = None) -> dict:
        body: Dict[str, object] = {"r": r, "k": k}
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self.request("POST", "/topk", body)

    def batch(self, queries: List[dict]) -> dict:
        return self.request("POST", "/batch", {"queries": queries})

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def readyz(self) -> dict:
        """Readiness payload; raises only on transport failure."""
        status, _, payload = self._round_trip("GET", "/readyz", None)
        if isinstance(payload, dict):
            payload.setdefault("ready", status == 200)
            return payload
        return {"ready": status == 200}

    def metrics_text(self) -> str:
        status, _, payload = self._round_trip("GET", "/metrics", None)
        if status != 200:
            raise ServiceError(f"/metrics returned HTTP {status}", status)
        return payload if isinstance(payload, str) else json.dumps(payload)

    def statusz(self) -> dict:
        """Service + telemetry state (the ``/statusz`` page)."""
        return self.request("GET", "/statusz")

    def tracez(self) -> dict:
        """Recent sampled span trees."""
        return self.request("GET", "/tracez")

    def slowlogz(self) -> dict:
        """Captured slow/degraded queries."""
        return self.request("GET", "/slowlogz")

    # ------------------------------------------------------------------
    # Transport with retries
    # ------------------------------------------------------------------

    def request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        """One logical request; retries shed/unavailable responses.

        Every attempt of one logical request carries the same outbound
        ``X-Trace-Id``, so server-side telemetry correlates retries of
        the same call; errors carry the id as ``exc.trace_id``.
        """
        attempt = 0
        trace_id = new_trace_id()
        while True:
            status, headers, payload = self._round_trip(
                method, path, body, trace_id=trace_id
            )
            if status == 200:
                return payload if isinstance(payload, dict) else {"raw": payload}
            error = (
                _decode_error(status, payload)
                if isinstance(payload, dict)
                else ServiceError(str(payload), status)
            )
            error.trace_id = self.last_trace_id or trace_id
            if status not in RETRYABLE_STATUSES or attempt >= self.max_retries:
                raise error
            self._back_off(attempt, headers.get("Retry-After"))
            attempt += 1

    def _round_trip(
        self,
        method: str,
        path: str,
        body: Optional[dict],
        trace_id: Optional[str] = None,
    ):
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"} if payload else {}
            if trace_id:
                headers["X-Trace-Id"] = trace_id
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            header_map = {k: v for k, v in response.getheaders()}
            if header_map.get("X-Trace-Id"):
                self.last_trace_id = header_map["X-Trace-Id"]
            content_type = header_map.get("Content-Type", "")
            if content_type.startswith("application/json"):
                try:
                    decoded: object = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = raw.decode("utf-8", "replace")
            else:
                decoded = raw.decode("utf-8", "replace")
            return response.status, header_map, decoded
        except (ConnectionError, OSError) as exc:
            raise BackendUnavailableError(
                f"cannot reach {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _back_off(self, attempt: int, retry_after_header: Optional[str]) -> None:
        """Sleep max(server hint, jittered exponential backoff)."""
        backoff = min(self.backoff_s * (2.0 ** attempt), self.max_backoff_s)
        backoff *= 0.5 + self._rng.random()  # full jitter in [0.5x, 1.5x)
        hint = 0.0
        if retry_after_header:
            try:
                hint = float(retry_after_header)
            except ValueError:
                hint = 0.0
        delay = max(backoff, hint)
        self.retries += 1
        self.slept_s += delay
        self._sleep(delay)
