"""Bounded admission control with load shedding and backpressure.

The service's first line of defense: a counting admission controller in
front of query execution.  At most ``max_inflight`` requests execute at
once; up to ``max_queue`` more wait their turn on a condition variable
(FIFO under CPython's ``Condition`` semantics); everything beyond that is
*shed* immediately -- the caller turns a shed into HTTP 429 with a
``Retry-After`` hint, which keeps tail latency bounded for the requests
that are admitted instead of letting every request time out together
(the mobility-index benchmarking literature calls this the collapse
regime).

Queue wait is **not free**: a waiting request's
:class:`~repro.resilience.Deadline` keeps ticking, and :meth:`admit`
gives up with ``EXPIRED`` once the budget runs out in line, so the
caller can degrade to an anytime answer rather than execute a query
whose requester has already given up.

``begin_drain`` flips the controller into shutdown mode: new arrivals
are refused with ``DRAINING`` (HTTP 503) while in-flight work finishes,
which is what makes ``/readyz``-based rollouts lossless.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.resilience import Deadline

#: Admission outcomes (stringly-typed so they serialize into metrics
#: labels and response notes without an enum import at every call site).
ADMITTED = "admitted"
SHED = "shed"
EXPIRED = "expired"
DRAINING = "draining"


@dataclass(frozen=True)
class AdmissionDecision:
    """What happened to one arrival, and how long it waited to hear it."""

    outcome: str
    queue_wait_s: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.outcome == ADMITTED


class AdmissionController:
    """Bounded in-flight + bounded queue admission with load shedding."""

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._clock = clock
        self._cond = threading.Condition()
        self.inflight = 0
        self.queued = 0
        self.draining = False
        #: Outcome tallies (mirrored into the metrics registry).
        self.outcomes: Dict[str, int] = {
            ADMITTED: 0, SHED: 0, EXPIRED: 0, DRAINING: 0,
        }
        self._outcome_counter = obs_metrics.counter(
            "repro_service_admissions_total",
            "Admission decisions by outcome (admitted/shed/expired/draining)",
        )
        self._queue_wait = obs_metrics.histogram(
            "repro_service_queue_wait_seconds",
            "Time requests spent waiting in the admission queue",
        )
        self._depth_gauge = obs_metrics.gauge(
            "repro_service_queue_depth", "Requests waiting in the admission queue"
        )
        self._inflight_gauge = obs_metrics.gauge(
            "repro_service_inflight", "Requests currently executing"
        )
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, deadline: Optional[Deadline] = None) -> AdmissionDecision:
        """Wait for an execution slot; never waits past the deadline.

        Returns one of the four outcomes.  ``ADMITTED`` transfers one
        in-flight slot to the caller, who *must* pair it with
        :meth:`release` (use a try/finally).
        """
        arrived = self._clock()
        with self._cond:
            decision = self._admit_locked(deadline, arrived)
        self._account(decision)
        return decision

    def _admit_locked(
        self, deadline: Optional[Deadline], arrived: float
    ) -> AdmissionDecision:
        if self.draining:
            return AdmissionDecision(DRAINING)
        if self.inflight < self.max_inflight and self.queued == 0:
            self.inflight += 1
            return AdmissionDecision(ADMITTED)
        if self.queued >= self.max_queue:
            return AdmissionDecision(SHED)
        self.queued += 1
        self._depth_gauge.set(self.queued)
        try:
            while True:
                if self.draining:
                    return AdmissionDecision(DRAINING, self._clock() - arrived)
                if self.inflight < self.max_inflight:
                    self.inflight += 1
                    return AdmissionDecision(ADMITTED, self._clock() - arrived)
                if deadline is not None and deadline.expired():
                    return AdmissionDecision(EXPIRED, self._clock() - arrived)
                timeout = None
                if deadline is not None:
                    # Never block past the request's own budget; the floor
                    # keeps an injected (manual) clock from busy-spinning.
                    timeout = max(0.001, deadline.remaining())
                self._cond.wait(timeout)
        finally:
            self.queued -= 1
            self._depth_gauge.set(self.queued)

    def release(self) -> None:
        """Return an in-flight slot and wake one queued waiter."""
        with self._cond:
            self.inflight -= 1
            self._inflight_gauge.set(self.inflight)
            self._cond.notify()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new work; queued waiters are released as DRAINING."""
        with self._cond:
            self.draining = True
            self._cond.notify_all()

    def await_idle(self, timeout_s: float) -> bool:
        """Block until no request is in flight (True) or timeout (False)."""
        limit = self._clock() + timeout_s
        with self._cond:
            while self.inflight > 0:
                remaining = limit - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))
            return True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _account(self, decision: AdmissionDecision) -> None:
        with self._cond:
            self.outcomes[decision.outcome] += 1
        self._outcome_counter.inc(outcome=decision.outcome)
        self._queue_wait.observe(decision.queue_wait_s)
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        self._depth_gauge.set(self.queued)
        self._inflight_gauge.set(self.inflight)

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time admission state (for ``/readyz`` and stats)."""
        with self._cond:
            return {
                "inflight": self.inflight,
                "queued": self.queued,
                "draining": int(self.draining),
                **{f"outcome_{name}": count for name, count in self.outcomes.items()},
            }
