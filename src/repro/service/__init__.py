"""The hardened concurrent MIO query service.

A long-lived, stdlib-only HTTP front end over
:class:`~repro.session.QuerySession`, built for sustained concurrent
load:

* bounded admission with load shedding (:mod:`repro.service.admission`),
* end-to-end per-request deadlines that degrade to anytime answers,
* a circuit breaker guarding the primary execution path
  (:mod:`repro.service.breaker`) with a dependable fallback chain,
* taxonomy-mapped error responses, never raw tracebacks,
* graceful drain keyed off ``/readyz``,
* a bundled retry client that honors ``Retry-After``
  (:mod:`repro.service.client`).

``docs/service.md`` is the operator guide; ``repro serve`` is the CLI
entry point.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.app import Response, ServiceApp
from repro.service.breaker import CircuitBreaker
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.server import MIOServer


def serve(source, config=None, **session_opts) -> MIOServer:
    """Build an app over ``source`` and return a started server.

    Convenience for tests and embedding::

        server = serve(collection, ServiceConfig(port=0))
        client = ServiceClient(*server.address)
        ...
        server.shutdown_gracefully()
    """
    app = ServiceApp(source, config, **session_opts)
    return MIOServer(app).start()


__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "MIOServer",
    "Response",
    "ServiceApp",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "serve",
]
