"""Circuit breaker around the fault-prone primary execution path.

The classic three-state machine, tuned for the query service's
degradation chain (:mod:`repro.service.app`):

* **closed** -- requests flow to the primary path (configured kernel /
  bitset backend / parallel engine).  Failures count; success resets the
  count.
* **open** -- after ``failure_threshold`` consecutive failures the
  breaker trips: requests bypass the primary path entirely (straight to
  the dependable fallback) instead of hammering a broken backend.  The
  open interval grows exponentially across consecutive trips and carries
  *jitter* so a fleet of instances does not half-open in lockstep
  against a shared dependency.
* **half-open** -- once the interval elapses, exactly one probe request
  is allowed through the primary path.  Success closes the breaker and
  resets the backoff; failure re-opens it with a doubled interval.

Clock and RNG are injectable so the whole state machine is testable with
:class:`~repro.resilience.ManualClock` and a seeded ``random.Random`` --
no sleeping, no flakes.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Optional

from repro.obs import metrics as obs_metrics

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of the state machine (alert rules key off this).
_STATE_CODE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with jittered exponential reset."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_s: float = 2.0,
        max_reset_s: float = 30.0,
        jitter: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
        name: str = "primary",
    ) -> None:
        self.failure_threshold = failure_threshold
        self.base_reset_s = reset_s
        self.max_reset_s = max_reset_s
        self.jitter = jitter
        self.name = name
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._current_reset_s = reset_s
        self._open_until = 0.0
        self._probe_outstanding = False
        self.transitions: Dict[str, int] = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        self._state_gauge = obs_metrics.gauge(
            "repro_service_breaker_state",
            "Circuit breaker state (0=closed, 1=half_open, 2=open)",
        )
        self._transition_counter = obs_metrics.counter(
            "repro_service_breaker_transitions_total",
            "Circuit breaker state transitions by target state",
        )
        self._publish()

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing OPEN -> HALF_OPEN if the interval passed."""
        with self._lock:
            self._advance_locked()
            return self._state

    def allow(self) -> bool:
        """Whether this request may try the primary path.

        In half-open state only a single outstanding probe is allowed;
        concurrent requests fall through to the fallback until the probe
        reports back.
        """
        with self._lock:
            self._advance_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def on_success(self) -> None:
        """The primary path served a request without a backend failure."""
        with self._lock:
            self._probe_outstanding = False
            self._failures = 0
            if self._state != CLOSED:
                self._transition_locked(CLOSED)
                self._current_reset_s = self.base_reset_s

    def on_failure(self) -> None:
        """The primary path failed (backend fault / kernel error)."""
        with self._lock:
            self._probe_outstanding = False
            if self._state == HALF_OPEN:
                # The probe failed: re-open with a doubled (capped) interval.
                self._current_reset_s = min(
                    self._current_reset_s * 2.0, self.max_reset_s
                )
                self._trip_locked()
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._trip_locked()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _advance_locked(self) -> None:
        if self._state == OPEN and self._clock() >= self._open_until:
            self._transition_locked(HALF_OPEN)
            self._probe_outstanding = False

    def _trip_locked(self) -> None:
        interval = self._current_reset_s * (1.0 + self._rng.random() * self.jitter)
        self._open_until = self._clock() + interval
        self._failures = 0
        self._transition_locked(OPEN)

    def _transition_locked(self, target: str) -> None:
        self._state = target
        self.transitions[target] += 1
        self._transition_counter.inc(breaker=self.name, to=target)
        self._publish()

    def _publish(self) -> None:
        self._state_gauge.set(_STATE_CODE[self._state], breaker=self.name)

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time breaker state for ``/readyz`` and stats."""
        with self._lock:
            self._advance_locked()
            return {
                "state": self._state,
                "failures": self._failures,
                "reset_s": self._current_reset_s,
                "transitions": dict(self.transitions),
            }
