"""The HTTP-agnostic core of the hardened concurrent MIO query service.

:class:`ServiceApp` owns everything between "bytes arrived" and "bytes to
send back": request parsing, admission control, end-to-end deadlines,
the circuit-breaker-guarded degradation chain, taxonomy-to-HTTP error
mapping, and readiness/drain state.  The HTTP layer
(:mod:`repro.service.server`) is a thin adapter over :meth:`handle`, so
every robustness behavior is testable in-process without sockets.

Request lifecycle
-----------------

1. **Parse** -- the body must be a JSON object; every field passes
   through :func:`repro.session.normalize_request`, so malformed input is
   HTTP 400 (:class:`~repro.errors.InvalidQueryError`), never a
   traceback.
2. **Deadline** -- a :class:`~repro.resilience.Deadline` starts at
   *arrival* with the clamped budget.  Everything after -- queueing,
   execution, degradation -- happens inside that one budget.
3. **Admit** -- the bounded admission queue either admits, sheds (429 +
   ``Retry-After``), refuses while draining (503), or reports the budget
   expired in line (the request degrades to a vacuous anytime answer:
   HTTP 200, ``exact: false``).
4. **Execute** -- the degradation chain below.
5. **Respond** -- 200 with the answer (``exact`` says whether it is), or
   a taxonomy-mapped error envelope.

Degradation chain
-----------------

``primary session -> fallback session -> vacuous anytime answer``

The *primary* session runs the configured kernel/bitset backend/cores.
A backend-shaped failure (:class:`~repro.errors.InjectedFault`,
:class:`~repro.errors.PartitionTaskError`,
:class:`~repro.errors.BackendUnavailableError`) feeds the circuit
breaker and falls through to the *fallback* session (pure-python kernel,
plain bitsets, serial) under the same deadline.  When the breaker is
open, requests skip the primary path entirely.  If the fallback fails
too, or the deadline expires before verification, the response is still
HTTP 200 -- an anytime answer whose score is a (possibly vacuous) lower
bound, flagged ``exact: false`` with a ``degraded_*`` note -- because a
degraded answer with an explicit quality marker beats an error page for
LBS-style traffic.  Only invalid input (400) and admission refusals
(429/503) are non-200.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.query import MIOResult
from repro.dynamic import DynamicMIO
from repro.errors import (
    BackendUnavailableError,
    CorruptDataError,
    InjectedFault,
    InvalidQueryError,
    PartitionTaskError,
    QueryTimeout,
    ReproError,
    ServiceOverloadedError,
)
from repro.obs import metrics as obs_metrics
from repro.obs.export import prometheus_text
from repro.obs.telemetry import bind_trace_id, get_telemetry, new_trace_id
from repro.resilience import Deadline
from repro.service.admission import (
    ADMITTED,
    DRAINING,
    EXPIRED,
    SHED,
    AdmissionController,
)
from repro.service.breaker import CircuitBreaker
from repro.service.config import ServiceConfig
from repro.session import QueryRequest, QuerySession, normalize_request

#: Failures that indicate a broken execution path (they feed the circuit
#: breaker and trigger the fallback chain), as opposed to bad input or an
#: expired deadline.
BACKEND_FAILURES = (
    InjectedFault,
    PartitionTaskError,
    BackendUnavailableError,
    CorruptDataError,
)

JSON_TYPE = "application/json"
PROM_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Characters allowed in a caller-supplied ``X-Trace-Id`` (anything else
#: is stripped -- the id lands in headers, logs, and JSON verbatim).
_TRACE_ID_SAFE = re.compile(r"[^A-Za-z0-9._\-]")


def sanitize_trace_id(raw: Optional[str]) -> Optional[str]:
    """A header-safe trace id from caller input, or None if nothing survives."""
    if not raw:
        return None
    cleaned = _TRACE_ID_SAFE.sub("", raw)[:64]
    return cleaned or None


@dataclass
class Response:
    """One HTTP-shaped reply, transport-agnostic."""

    status: int
    payload: Union[dict, str]
    headers: Dict[str, str] = field(default_factory=dict)
    content_type: str = JSON_TYPE

    def body_bytes(self) -> bytes:
        if isinstance(self.payload, str):
            return self.payload.encode("utf-8")
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")


def error_response(exc: ReproError, retry_after: Optional[float] = None) -> Response:
    """The taxonomy-mapped error envelope (never a traceback)."""
    headers = {}
    if retry_after is not None:
        # Retry-After is integer-seconds per RFC 9110; round up so a hint
        # of 0.2s does not become "retry immediately".
        headers["Retry-After"] = str(max(1, int(-(-retry_after // 1))))
    return Response(
        status=type(exc).http_status,
        payload={
            "error": type(exc).__name__,
            "message": str(exc),
            "status": type(exc).http_status,
            **({"retry_after_s": retry_after} if retry_after is not None else {}),
        },
        headers=headers,
    )


class ServiceApp:
    """The query service's request-handling core (no sockets here)."""

    def __init__(
        self,
        source,
        config: Optional[ServiceConfig] = None,
        *,
        backend: str = "ewah",
        kernel: str = "auto",
        cores: Optional[int] = None,
        label_dir=None,
        clock: Callable[[], float] = time.monotonic,
        breaker: Optional[CircuitBreaker] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._clock = clock
        #: Primary path: the configured engine stack, caches shared across
        #: worker threads (the cache tiers are individually thread-safe and
        #: published label snapshots are read-only -- see LabelStore).
        self.primary = QuerySession(
            source,
            backend=backend,
            kernel=kernel,
            cores=cores if cores is not None else self.config.cores,
            label_dir=label_dir,
            parallel_mode=self.config.parallel_mode,
            shards=self.config.shards,
            planner=self.config.planner,
        )
        #: Fallback path: the most dependable stack we have -- pure-python
        #: kernel, plain bitsets, serial engine, no shared label directory.
        self.fallback = QuerySession(source, backend="plain", kernel="python", cores=1)
        self._dynamic = source if isinstance(source, DynamicMIO) else None
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(
                self.config.max_inflight, self.config.max_queue, clock=clock
            )
        )
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                failure_threshold=self.config.breaker_failures,
                reset_s=self.config.breaker_reset_s,
                max_reset_s=self.config.breaker_max_reset_s,
                jitter=self.config.breaker_jitter,
                clock=clock,
            )
        )
        self._ready = True
        self._started = clock()
        self._stats_lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "requests": 0,
            "served": 0,
            "degraded": 0,
            "shed": 0,
            "errors": 0,
            "fallback_served": 0,
        }
        #: EWMA of end-to-end request seconds, seeding the Retry-After hint.
        self._ewma_seconds = 0.05
        self._ewma_gauge = obs_metrics.gauge(
            "repro_service_latency_ewma_seconds",
            "EWMA of per-request service time (the Retry-After basis)",
        )
        self._ewma_gauge.set(self._ewma_seconds)
        #: Always-on telemetry: the service turns the process hub's dials
        #: to its configured sampling rate and slow-query threshold, so
        #: /statusz, /tracez, and /slowlogz have data from request one.
        self.telemetry = get_telemetry()
        self.telemetry.reconfigure(
            enabled=True,
            sample_rate=self.config.sample_rate,
            slow_ms=self.config.slow_query_ms,
        )
        self._responses = obs_metrics.counter(
            "repro_service_responses_total", "Service responses by endpoint and status"
        )
        self._latency = obs_metrics.histogram(
            "repro_service_request_seconds",
            "End-to-end service request latency (admission wait included)",
        )
        self._degraded = obs_metrics.counter(
            "repro_service_degraded_total",
            "Responses degraded to inexact anytime answers, by cause",
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, str]] = None,
        body: Optional[bytes] = None,
        trace_id: Optional[str] = None,
    ) -> Response:
        """Route one request; never raises, never leaks a traceback.

        Every response -- success, error envelope, or shed -- carries a
        trace id, in both the JSON body and the ``X-Trace-Id`` header:
        the caller's (sanitized) ``X-Trace-Id`` when one was sent, a
        fresh id otherwise.  The id is bound to the request's context so
        the telemetry profile, the slow-query log entry, and any sampled
        span tree correlate with the response the caller saw.
        """
        started = self._clock()
        endpoint = path.rstrip("/") or "/"
        trace_id = sanitize_trace_id(trace_id) or new_trace_id()
        with bind_trace_id(trace_id):
            try:
                response = self._route(method, endpoint, params or {}, body)
            except ReproError as exc:
                response = error_response(exc)
            except Exception as exc:  # noqa: BLE001 -- the no-traceback boundary
                with self._stats_lock:
                    self.stats["errors"] += 1
                response = Response(
                    status=500,
                    payload={
                        "error": "InternalError",
                        "message": f"{type(exc).__name__}: {exc}",
                        "status": 500,
                    },
                )
        if isinstance(response.payload, dict):
            response.payload.setdefault("trace_id", trace_id)
        response.headers.setdefault("X-Trace-Id", trace_id)
        self._responses.inc(endpoint=endpoint, status=response.status)
        self._latency.observe(self._clock() - started)
        return response

    def _route(
        self, method: str, path: str, params: Dict[str, str], body: Optional[bytes]
    ) -> Response:
        if path == "/healthz":
            return self.handle_healthz()
        if path == "/readyz":
            return self.handle_readyz()
        if path == "/metrics":
            return self.handle_metrics()
        if path == "/statusz":
            return self.handle_statusz()
        if path == "/tracez":
            return self.handle_tracez()
        if path == "/slowlogz":
            return self.handle_slowlogz()
        if path == "/query":
            return self.handle_query(self._parse_body(params, body))
        if path == "/topk":
            payload = self._parse_body(params, body)
            if "k" not in payload:
                raise InvalidQueryError('/topk requires a "k" field')
            return self.handle_query(payload)
        if path == "/batch":
            if method != "POST":
                raise InvalidQueryError("/batch requires POST")
            return self.handle_batch(self._parse_body(params, body))
        return Response(
            status=404,
            payload={"error": "NotFound", "message": f"no route for {path}", "status": 404},
        )

    @staticmethod
    def _parse_body(params: Dict[str, str], body: Optional[bytes]) -> dict:
        """A request object from a JSON body or (GET) query parameters."""
        if body:
            try:
                document = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise InvalidQueryError(f"request body is not valid JSON ({exc})") from exc
            if not isinstance(document, dict):
                raise InvalidQueryError("request body must be a JSON object")
            return document
        return dict(params)

    # ------------------------------------------------------------------
    # Liveness / readiness / metrics
    # ------------------------------------------------------------------

    def handle_healthz(self) -> Response:
        return Response(
            status=200,
            payload={"status": "ok", "uptime_s": round(self._clock() - self._started, 3)},
        )

    def handle_readyz(self) -> Response:
        ready = self._ready
        payload = {
            "ready": ready,
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.snapshot(),
        }
        if ready:
            return Response(status=200, payload=payload)
        return Response(
            status=503,
            payload=payload,
            headers={"Retry-After": str(max(1, int(self.config.drain_s)))},
        )

    def handle_metrics(self) -> Response:
        return Response(status=200, payload=prometheus_text(), content_type=PROM_TYPE)

    # ------------------------------------------------------------------
    # Introspection (telemetry)
    # ------------------------------------------------------------------

    def handle_statusz(self) -> Response:
        """One page of service + telemetry state for a human operator."""
        return Response(
            status=200,
            payload={
                "uptime_s": round(self._clock() - self._started, 3),
                "ready": self._ready,
                "service": self.snapshot(),
                "telemetry": self.telemetry.snapshot(),
                "retry_after_hint_s": self.retry_after_hint(),
            },
        )

    def handle_tracez(self) -> Response:
        """The hub's recent sampled span trees, oldest first."""
        traces = self.telemetry.traces_snapshot()
        return Response(
            status=200,
            payload={
                "sampler": self.telemetry.sampler.snapshot(),
                "count": len(traces),
                "traces": traces,
            },
        )

    def handle_slowlogz(self) -> Response:
        """Captured slow/degraded queries with their span trees."""
        entries = self.telemetry.slowlog.snapshot()
        return Response(
            status=200,
            payload={
                "threshold_ms": self.telemetry.slowlog.threshold_ms,
                "captured": self.telemetry.slowlog.captured,
                "count": len(entries),
                "entries": entries,
            },
        )

    # ------------------------------------------------------------------
    # Query endpoints
    # ------------------------------------------------------------------

    def handle_query(self, payload: dict) -> Response:
        """``/query`` and ``/topk``: one request through the full chain."""
        with self._stats_lock:
            self.stats["requests"] += 1
        request = normalize_request(payload)
        deadline = Deadline.from_timeout_ms(
            self.config.clamp_timeout_ms(request.timeout_ms), clock=self._clock
        )
        decision = self.admission.admit(deadline)
        if decision.outcome in (SHED, DRAINING):
            return self._shed_response(decision.outcome)
        if decision.outcome == EXPIRED:
            result = self._vacuous_result(
                request, cause="admission_queue",
                note="deadline expired waiting in the admission queue",
            )
            return self._result_response(request, result, deadline, decision.queue_wait_s)
        try:
            result = self._execute_chain(request, deadline)
        finally:
            self.admission.release()
        return self._result_response(request, result, deadline, decision.queue_wait_s)

    def handle_batch(self, payload: dict) -> Response:
        """``/batch``: one admission slot, per-request deadline isolation."""
        with self._stats_lock:
            self.stats["requests"] += 1
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise InvalidQueryError('a batch needs a non-empty "queries" list')
        if len(queries) > self.config.max_batch:
            raise InvalidQueryError(
                f"batch size {len(queries)} exceeds max_batch={self.config.max_batch}"
            )
        requests = [self._with_default_timeout(normalize_request(q)) for q in queries]
        # The whole batch shares one admission slot; its queue wait is
        # bounded by the largest per-request budget in the batch.
        deadline = Deadline.from_timeout_ms(
            max(request.timeout_ms for request in requests), clock=self._clock
        )
        decision = self.admission.admit(deadline)
        if decision.outcome in (SHED, DRAINING):
            return self._shed_response(decision.outcome)
        if decision.outcome == EXPIRED:
            results = [
                self._vacuous_result(
                    request, cause="admission_queue",
                    note="deadline expired waiting in the admission queue",
                )
                for request in requests
            ]
        else:
            try:
                results = self.primary.query_many(requests)
            except BACKEND_FAILURES:
                self.breaker.on_failure()
                results = self._batch_fallback(requests)
            finally:
                self.admission.release()
        payload_out = {
            "count": len(results),
            "queue_wait_ms": round(decision.queue_wait_s * 1000.0, 3),
            "results": [self._result_payload(req, res)
                        for req, res in zip(requests, results)],
        }
        self._observe_served(results)
        return Response(status=200, payload=payload_out)

    def _with_default_timeout(self, request: QueryRequest) -> QueryRequest:
        """Batch entries always carry an explicit, clamped budget."""
        return QueryRequest(
            r=request.r,
            k=request.k,
            timeout_ms=self.config.clamp_timeout_ms(request.timeout_ms),
            deadline=request.deadline,
        )

    def _batch_fallback(self, requests: List[QueryRequest]) -> List[MIOResult]:
        """Re-run a failed batch on the dependable stack (fresh budgets)."""
        try:
            results = self.fallback.query_many(requests)
        except BACKEND_FAILURES as exc:
            return [
                self._vacuous_result(
                    request, cause="fault",
                    note=f"{type(exc).__name__} on both execution paths",
                )
                for request in requests
            ]
        with self._stats_lock:
            self.stats["fallback_served"] += len(results)
        for result in results:
            result.notes.setdefault("degraded_path", "fallback")
        return results

    # ------------------------------------------------------------------
    # The degradation chain
    # ------------------------------------------------------------------

    def _execute_chain(self, request: QueryRequest, deadline: Optional[Deadline]) -> MIOResult:
        """primary -> fallback -> vacuous anytime, all under one deadline."""
        breaker_open = not self.breaker.allow()
        if not breaker_open:
            try:
                result = self._run(self.primary, request, deadline)
                self.breaker.on_success()
                return result
            except QueryTimeout as exc:
                # An expired budget says nothing about backend health.
                self.breaker.on_success()
                return self._vacuous_result(
                    request, cause="deadline",
                    note=f"deadline expired during {exc.phase or 'filtering'}",
                )
            except BACKEND_FAILURES as exc:
                self.breaker.on_failure()
                cause = type(exc).__name__
        else:
            cause = "breaker_open"
        # Fallback path: the same end-to-end deadline keeps ticking.
        try:
            result = self._run(self.fallback, request, deadline)
        except QueryTimeout as exc:
            return self._vacuous_result(
                request, cause="deadline",
                note=f"deadline expired during {exc.phase or 'filtering'} (fallback)",
            )
        except BACKEND_FAILURES as exc:
            return self._vacuous_result(
                request, cause="fault",
                note=f"{cause}, then {type(exc).__name__} on the fallback path",
            )
        result.notes["degraded_path"] = f"fallback ({cause})"
        with self._stats_lock:
            self.stats["fallback_served"] += 1
        return result

    @staticmethod
    def _run(
        session: QuerySession, request: QueryRequest, deadline: Optional[Deadline]
    ) -> MIOResult:
        """Hand one request to a session under the *remaining* budget.

        ``deadline`` was started at arrival, so queue wait has already
        been charged; ``Deadline.remaining_ms`` documents the contract.
        """
        if deadline is not None and deadline.remaining_ms() <= 0.0:
            raise QueryTimeout(
                "request budget exhausted before execution", phase="admission_queue"
            )
        if request.k == 1:
            return session.query(request.r, deadline=deadline)
        return session.topk(request.r, request.k, deadline=deadline)

    def _vacuous_result(self, request: QueryRequest, cause: str, note: str) -> MIOResult:
        """The chain's last resort: a valid (if vacuous) lower-bound answer."""
        self._degraded.inc(cause=cause)
        result = MIOResult(
            algorithm="bigrid",
            r=request.r,
            winner=-1,
            score=0,
            exact=False,
            notes={"anytime": note, f"degraded_{cause}": note},
        )
        # No pipeline ran, so no choke point saw this query; record the
        # degraded outcome here so the slow-query log never misses one.
        collection = self.primary.collection
        self.telemetry.observe_result(
            result,
            engine="service",
            r=request.r,
            k=request.k,
            n=collection.n if collection is not None else 0,
        )
        return result

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def _result_payload(self, request: QueryRequest, result: MIOResult) -> dict:
        payload = {
            "r": result.r,
            "k": request.k,
            "algorithm": result.algorithm,
            "winner": result.winner,
            "score": result.score,
            "exact": result.exact,
            "notes": result.notes,
            "elapsed_ms": round(result.total_time * 1000.0, 3),
        }
        if result.topk is not None:
            payload["topk"] = [[oid, score] for oid, score in result.topk]
        return payload

    def _result_response(
        self,
        request: QueryRequest,
        result: MIOResult,
        deadline: Optional[Deadline],
        queue_wait_s: float,
    ) -> Response:
        payload = self._result_payload(request, result)
        payload["queue_wait_ms"] = round(queue_wait_s * 1000.0, 3)
        if deadline is not None:
            payload["budget_remaining_ms"] = round(deadline.remaining_ms(), 3)
        self._observe_served([result])
        return Response(status=200, payload=payload)

    def _observe_served(self, results: List[MIOResult]) -> None:
        degraded = sum(1 for result in results if result is not None and not result.exact)
        with self._stats_lock:
            self.stats["served"] += len(results)
            self.stats["degraded"] += degraded
        for result in results:
            if result is not None and not result.exact:
                if "degraded_deadline" in result.notes:
                    self._degraded.inc(cause="deadline")
            self._note_latency(result.total_time if result is not None else 0.0)

    def _note_latency(self, seconds: float) -> None:
        # EWMA with alpha=0.2: recent service time dominates Retry-After.
        self._ewma_seconds += 0.2 * (seconds - self._ewma_seconds)
        self._ewma_gauge.set(self._ewma_seconds)

    def _shed_response(self, outcome: str) -> Response:
        with self._stats_lock:
            self.stats["shed"] += 1
        retry_after = self.retry_after_hint()
        if outcome == DRAINING:
            exc: ReproError = ServiceOverloadedError(
                "service is draining for shutdown", retry_after=retry_after
            )
            response = error_response(exc, retry_after)
            response.status = 503
            response.payload["status"] = 503
            return response
        return error_response(
            ServiceOverloadedError(
                "admission queue full; retry with backoff", retry_after=retry_after
            ),
            retry_after,
        )

    def retry_after_hint(self) -> float:
        """Seconds until a retry has a fair shot at being admitted.

        Scales the recent per-request latency EWMA by the backlog ahead
        of a retrying client, clamped to the configured floor/cap.
        """
        snapshot = self.admission.snapshot()
        backlog = snapshot["queued"] + snapshot["inflight"]
        hint = self._ewma_seconds * max(1.0, backlog / self.config.max_inflight)
        return round(
            min(max(hint, self.config.retry_after_floor_s), self.config.retry_after_cap_s),
            3,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self._ready

    def begin_drain(self) -> None:
        """Flip unready and refuse new admissions (idempotent)."""
        self._ready = False
        self.admission.begin_drain()

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Begin drain and wait for in-flight requests (True = drained)."""
        self.begin_drain()
        budget = self.config.drain_s if timeout_s is None else timeout_s
        drained = self.admission.await_idle(budget)
        # Shard workers (and their shared-memory block) must not outlive
        # the service; releasing after the drain keeps in-flight sharded
        # queries intact.
        self.primary.close()
        return drained

    def snapshot(self) -> Dict[str, object]:
        """Service-level stats (the CLI prints this on shutdown)."""
        with self._stats_lock:
            stats = dict(self.stats)
        return {
            **stats,
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "session": self.primary.stats(),
            "parallel": {
                "cores": self.primary.cores,
                "mode": self.primary.parallel_mode,
                "shards": self.primary.shards or self.primary.cores,
            },
        }
