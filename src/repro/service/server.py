"""The stdlib HTTP front end over :class:`~repro.service.app.ServiceApp`.

A deliberately thin adapter: ``http.server.ThreadingHTTPServer`` gives us
one handler thread per connection, and every robustness decision --
admission, deadlines, the breaker, error mapping -- already lives in the
transport-agnostic app core, so this module only moves bytes and runs
the graceful-shutdown choreography:

1. :meth:`MIOServer.shutdown_gracefully` flips ``/readyz`` to 503 and
   puts the admission controller in drain mode (new arrivals get 503,
   queued waiters are released as draining);
2. in-flight requests finish within the configured drain budget;
3. the listener socket closes.

Load balancers that poll ``/readyz`` stop routing at step 1, which is
what makes rollouts lossless.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.obs.logging import get_logger
from repro.service.app import Response, ServiceApp

#: Cap on accepted request bodies; larger payloads get HTTP 413 before
#: any parsing happens (a batch of max_batch requests is ~10 KiB).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Per-connection request handler; all logic delegates to the app."""

    server_version = "repro-mio/1.0"
    protocol_version = "HTTP/1.1"

    # Set by MIOServer before the server starts.
    app: ServiceApp

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        params = dict(parse_qsl(split.query))
        body: Optional[bytes] = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._send(
                    Response(
                        status=413,
                        payload={
                            "error": "InvalidQueryError",
                            "message": f"request body exceeds {MAX_BODY_BYTES} bytes",
                            "status": 413,
                        },
                    )
                )
                return
            body = self.rfile.read(length) if length else b""
        response = self.app.handle(
            method, split.path, params, body,
            trace_id=self.headers.get("X-Trace-Id"),
        )
        self._send(response)

    def _send(self, response: Response) -> None:
        body = response.body_bytes()
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-response; nothing sensible to do

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Route access logs through the structured logger instead of
        # stderr spam; a no-op unless logging is configured.
        get_logger().log("http_access", line=format % args)


class _Server(ThreadingHTTPServer):
    # A deep listen backlog: overload is *admission control's* call (shed
    # with 429 + Retry-After), not the kernel's (connection resets once
    # the SYN queue overflows under a connection burst).
    request_queue_size = 128


class MIOServer:
    """A running query service: ThreadingHTTPServer + the app core."""

    def __init__(self, app: ServiceApp) -> None:
        self.app = app
        handler = type("BoundHandler", (_Handler,), {"app": app})
        self._httpd = _Server((app.config.host, app.config.port), handler)
        # daemon_threads: a hung client connection cannot block process
        # exit after the drain budget has been honored.
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- resolves port 0 to the real port."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown_gracefully`."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "MIOServer":
        """Serve on a background thread (tests and the bundled client)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="mio-server", daemon=True
        )
        self._thread.start()
        return self

    def shutdown_gracefully(self, drain_s: Optional[float] = None) -> bool:
        """Drain in-flight work, then stop the listener.

        Returns True when every in-flight request finished inside the
        drain budget; False means the budget expired with work still
        running (the daemonized handler threads are abandoned).
        """
        drained = self.app.drain(drain_s)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None
        return drained

    def __enter__(self) -> "MIOServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown_gracefully()
