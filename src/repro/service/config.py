"""Service configuration: admission, deadline, breaker, and drain knobs.

One frozen dataclass holds every tuning knob of the hardened query
service, validated up front so a misconfigured deployment fails at
startup with :class:`~repro.errors.InvalidQueryError` (exit code 11)
instead of misbehaving under load.  ``docs/service.md`` carries the
tuning guide; the short version:

* ``max_inflight`` bounds concurrent query execution (the GIL makes more
  than a handful of compute-bound workers counterproductive);
* ``max_queue`` bounds the admission queue -- waiting requests burn
  their own deadline budget, so the queue should hold at most a few
  multiples of ``max_inflight``;
* ``default_timeout_ms``/``max_timeout_ms`` cap per-request budgets;
* the ``breaker_*`` knobs shape the circuit breaker around the primary
  execution path (see :mod:`repro.service.breaker`);
* ``drain_s`` bounds graceful shutdown: how long in-flight requests may
  finish while ``/readyz`` reports unready.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidQueryError
from repro.planner import PLANNER_NAMES


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the concurrent MIO query service."""

    #: Interface and port ``repro serve`` binds (port 0 = ephemeral).
    host: str = "127.0.0.1"
    port: int = 8080
    #: Maximum requests executing concurrently (admission semaphore).
    max_inflight: int = 4
    #: Maximum requests waiting for an execution slot; beyond this the
    #: service sheds with HTTP 429 + ``Retry-After``.
    max_queue: int = 16
    #: Budget applied when a request carries no ``timeout_ms``.
    default_timeout_ms: float = 1000.0
    #: Hard cap on any requested budget (0 disables the cap).
    max_timeout_ms: float = 30000.0
    #: Largest accepted ``/batch`` workload.
    max_batch: int = 64
    #: Consecutive primary-path failures that trip the circuit breaker.
    breaker_failures: int = 5
    #: Base open interval before a half-open probe, and its cap across
    #: consecutive re-trips (exponential backoff between the two).
    breaker_reset_s: float = 2.0
    breaker_max_reset_s: float = 30.0
    #: Jitter fraction applied to the open interval (0.5 = up to +50%).
    breaker_jitter: float = 0.5
    #: Graceful-shutdown drain budget for in-flight requests.
    drain_s: float = 5.0
    #: Floor for the ``Retry-After`` hint on shed responses (seconds).
    retry_after_floor_s: float = 0.05
    #: Cap for the ``Retry-After`` hint (seconds).
    retry_after_cap_s: float = 5.0
    #: Head-sampling rate for always-on span telemetry (queries carrying
    #: a full span tree into ``/tracez``); 0 disables sampling.
    sample_rate: float = 0.01
    #: Latency threshold for the slow-query log (``/slowlogz``).
    slow_query_ms: float = 250.0
    #: Worker processes for the primary session's parallel engine
    #: (``1`` keeps every query on the serial engine).
    cores: int = 1
    #: Parallel execution mode: ``"sharded"`` (real shard workers) or
    #: ``"simulated"`` (legacy makespan simulation).
    parallel_mode: str = "sharded"
    #: Shards per sharded query (None: one per core).
    shards: Optional[int] = None
    #: Query planner for the primary session: ``"static"`` keeps the
    #: configured knobs, ``"adaptive"`` re-selects kernel/mode/shards
    #: per query from the cost model (see ``docs/planner.md``).  The
    #: fallback session always stays static — dependability first.
    planner: str = "static"

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise InvalidQueryError("max_inflight must be at least 1")
        if self.max_queue < 0:
            raise InvalidQueryError("max_queue must be >= 0")
        if self.default_timeout_ms is not None and self.default_timeout_ms <= 0:
            raise InvalidQueryError("default_timeout_ms must be positive")
        if self.max_timeout_ms < 0:
            raise InvalidQueryError("max_timeout_ms must be >= 0 (0 disables the cap)")
        if self.max_batch < 1:
            raise InvalidQueryError("max_batch must be at least 1")
        if self.breaker_failures < 1:
            raise InvalidQueryError("breaker_failures must be at least 1")
        if self.breaker_reset_s <= 0 or self.breaker_max_reset_s < self.breaker_reset_s:
            raise InvalidQueryError(
                "breaker_reset_s must be positive and <= breaker_max_reset_s"
            )
        if not 0.0 <= self.breaker_jitter <= 1.0:
            raise InvalidQueryError("breaker_jitter must lie in [0, 1]")
        if self.drain_s < 0:
            raise InvalidQueryError("drain_s must be >= 0")
        if not 0.0 < self.retry_after_floor_s <= self.retry_after_cap_s:
            raise InvalidQueryError(
                "retry_after floor must be positive and <= its cap"
            )
        if not 0.0 <= self.sample_rate <= 1.0:
            raise InvalidQueryError("sample_rate must lie in [0, 1]")
        if self.slow_query_ms < 0:
            raise InvalidQueryError("slow_query_ms must be >= 0")
        if self.cores < 1:
            raise InvalidQueryError("cores must be at least 1")
        if self.parallel_mode not in ("sharded", "simulated"):
            raise InvalidQueryError(
                'parallel_mode must be "sharded" or "simulated"'
            )
        if self.shards is not None and self.shards < 1:
            raise InvalidQueryError("shards must be at least 1")
        if self.planner not in PLANNER_NAMES:
            raise InvalidQueryError(f"planner must be one of {PLANNER_NAMES}")

    def clamp_timeout_ms(self, timeout_ms) -> float:
        """The effective budget for one request (default + cap applied)."""
        if timeout_ms is None:
            timeout_ms = self.default_timeout_ms
        if self.max_timeout_ms and timeout_ms > self.max_timeout_ms:
            return self.max_timeout_ms
        return timeout_ms
