"""Batched query sessions with cross-query label and index reuse.

The labeling scheme of Section III-D exists so that *future* queries with
the same ``ceil(r)`` skip work, yet a bare :class:`~repro.core.engine.
MIOEngine` only reuses state if the caller hand-threads a
:class:`~repro.core.labels.LabelStore` through every call.
:class:`QuerySession` packages that lifecycle for a query *workload*: it
owns one collection plus three positional caches, each sound at a
different granularity:

===================  =======================  ==============================
cache                keyed by                 sound because
===================  =======================  ==============================
point labels         ``ceil(r)``              Definition 4 / Section III-D
large-grid keys      ``ceil(r)``              large width = ``ceil(r)``
                                              (Definition 3)
lower-bound state    exact ``r``              small width = ``r / sqrt(d)``;
                                              Labeling-1 points never enter
                                              shared small cells (Lemma 3)
===================  =======================  ==============================

All three are positional (object ids), so the session is also the unit of
*invalidation*: a session over a :class:`~repro.dynamic.DynamicMIO` watches
its mutation :attr:`~repro.dynamic.DynamicMIO.version` and drops every
cache when the collection changes -- the shape-based
``labels_match_collection`` guard cannot catch a remove+add of same-shaped
objects, the unsound-reuse scenario ``dynamic.py`` documents.

:meth:`QuerySession.query_many` plans a batch the way Section III-D's
analyst workload wants: requests grouped by ``ceil(r)``, largest ``r``
first within each group, so the group's first query produces labels at the
most general threshold and every other query runs the WITH-LABEL pipeline.
Each request keeps its own deadline (PR 1 semantics); a request that times
out degrades to an ``exact=False`` result *for that request only* and never
poisons the rest of the batch.  With ``cores > 1`` the session sends
labeling runs through the serial engine (labeling needs the canonical
serial access order) and everything else through the parallel engine.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.core.pipeline import run_grouped_sweep
from repro.core.lower_bound import LowerBoundCache
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.dynamic import DynamicMIO
from repro.errors import InvalidQueryError, QueryTimeout
from repro.grid.cache import LargeKeyCache
from repro.kernels import resolve_kernel
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, new_id
from repro.obs.recorders import register_cache_metrics
from repro.obs.telemetry import bind_trace_id, get_telemetry
from repro.obs.trace import ensure_tracer
from repro.parallel.engine import PARALLEL_MODES, ParallelMIOEngine
from repro.planner import AdaptivePlanner, resolve_planner
from repro.resilience import Deadline


@dataclass(frozen=True)
class QueryRequest:
    """One request of a batched workload.

    ``timeout_ms`` budgets the request from its own start (PR 1 semantics);
    ``deadline`` overrides it with an explicit budget object, which lets
    tests drive expiry deterministically with a
    :class:`~repro.resilience.ManualClock`.
    """

    r: float
    k: int = 1
    timeout_ms: Optional[float] = None
    deadline: Optional[Deadline] = None

    def ceiling(self) -> int:
        return math.ceil(self.r)


RequestLike = Union[QueryRequest, float, int, dict]


def _number(value: object, field_name: str) -> float:
    """Coerce one numeric request field, mapping junk to the taxonomy.

    ``float("abc")`` and ``int(None)`` raise builtin ``ValueError`` /
    ``TypeError``; letting those escape would hand a raw traceback to the
    CLI and the service, so every coercion funnels through here and comes
    out as :class:`InvalidQueryError` (exit code 11 / HTTP 400).
    """
    if isinstance(value, bool):
        raise InvalidQueryError(f'request field "{field_name}" must be a number')
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise InvalidQueryError(
            f'request field "{field_name}" must be a number, got {value!r}'
        ) from None


def normalize_request(spec: RequestLike) -> QueryRequest:
    """Coerce a workload entry (number, dict, or request) to a request.

    The one validation funnel for every ingress surface -- the session's
    own entry points, ``repro batch`` workload files, and the HTTP
    service's request bodies -- so malformed input always surfaces as
    :class:`InvalidQueryError` (exit code 11 / HTTP 400), never as a raw
    ``ValueError`` traceback.
    """
    if isinstance(spec, QueryRequest):
        request = spec
    elif isinstance(spec, dict):
        unknown = set(spec) - {"r", "k", "timeout_ms"}
        if unknown:
            raise InvalidQueryError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        if "r" not in spec:
            raise InvalidQueryError('a request object needs an "r" field')
        k = _number(spec.get("k", 1), "k")
        if k != int(k):
            raise InvalidQueryError(f'request field "k" must be an integer, got {k!r}')
        request = QueryRequest(
            r=_number(spec["r"], "r"),
            k=int(k),
            timeout_ms=(
                _number(spec["timeout_ms"], "timeout_ms")
                if spec.get("timeout_ms") is not None
                else None
            ),
        )
    elif isinstance(spec, (int, float)) and not isinstance(spec, bool):
        request = QueryRequest(r=float(spec))
    else:
        raise InvalidQueryError(
            f"a request must be a number, a dict, or a QueryRequest, got {spec!r}"
        )
    if math.isnan(request.r) or not request.r > 0 or math.isinf(request.r):
        raise InvalidQueryError("the distance threshold r must be positive and finite")
    if request.k < 1:
        raise InvalidQueryError("k must be at least 1")
    if request.timeout_ms is not None and request.timeout_ms < 0:
        raise InvalidQueryError("timeout_ms must be >= 0")
    return request


class QuerySession:
    """A long-lived query context over one collection with warm caches.

    Parameters
    ----------
    source:
        A static :class:`ObjectCollection`, or a :class:`DynamicMIO` whose
        mutations the session tracks (every mutation invalidates all
        caches before the next query runs).
    backend / label_reuse / retries:
        Forwarded to the engines (see :class:`MIOEngine` and
        :class:`ParallelMIOEngine`).
    cores:
        ``1`` runs everything on the serial engine.  ``> 1`` routes
        with-label queries through the parallel engine while labeling runs
        stay serial (the parallel engine never writes labels).
    parallel_mode / shards:
        Forwarded to :class:`ParallelMIOEngine`: ``"sharded"`` (default)
        runs real worker processes over curve-routed shards (``shards``
        per query, default one per core); ``"simulated"`` keeps the
        legacy makespan simulation.  A dynamic source's mutations also
        retire the sharded worker pool — workers hold the *previous*
        snapshot's coordinates in shared memory, so engine rebuild is the
        shard tier's invalidation point.
    label_dir:
        Optional directory for a disk-backed label store (labels survive
        the session, as the paper's external-memory setting assumes).
    planner:
        ``"static"`` (default) keeps every knob exactly as configured;
        ``"adaptive"`` shares one :class:`~repro.planner.adaptive.
        AdaptivePlanner` across both engines, re-selecting kernel,
        parallel mode, shard count, lower-bound dispatch, and grid-key
        policy per query (per ``ceil(r)`` group in batches) from cheap
        statistics, refined online from observed phase timings.  Every
        plannable knob is bit-exact across its settings, so answers
        never depend on the planner (see ``docs/planner.md``).
    """

    def __init__(
        self,
        source: Union[ObjectCollection, DynamicMIO],
        backend: str = "ewah",
        label_reuse: str = "safe",
        cores: int = 1,
        retries: int = 2,
        label_dir=None,
        lower_cache_entries: int = 8,
        tracer=None,
        kernel: str = "python",
        parallel_mode: str = "sharded",
        shards: Optional[int] = None,
        planner: str = "static",
    ) -> None:
        if cores < 1:
            raise InvalidQueryError("cores must be at least 1")
        if parallel_mode not in PARALLEL_MODES:
            raise InvalidQueryError(f"parallel_mode must be one of {PARALLEL_MODES}")
        if shards is not None and shards < 1:
            raise InvalidQueryError("shards must be at least 1")
        resolve_kernel(kernel)  # validate the name up front
        self.backend = backend
        self.label_reuse = label_reuse
        self.cores = cores
        self.retries = retries
        self.parallel_mode = parallel_mode
        self.shards = shards
        #: Compute-kernel backend forwarded to both engines
        #: (see :mod:`repro.kernels`).
        self.kernel = kernel
        #: One shared planner instance (or None for ``"static"``): both
        #: engines feed the same cost model, so calibration learned from
        #: serial queries informs sharded decisions and vice versa, and
        #: a ``ceil(r)``-grouped batch plans once per group via the
        #: planner's decision memo.  Survives dynamic-source engine
        #: rebuilds on purpose — unit costs describe the host, not one
        #: collection snapshot.
        self.planner = resolve_planner(planner)
        #: Optional tracer shared with both engines: batched workloads
        #: produce one ``batch`` root span with a ``request`` child per
        #: query, each containing that query's full phase tree.
        self.tracer = tracer
        self.label_store = LabelStore(label_dir)
        self.key_cache = LargeKeyCache()
        self.lower_cache = LowerBoundCache(lower_cache_entries)
        register_cache_metrics()
        # Concurrent use (the query service): the cache tiers are
        # individually thread-safe; these two locks cover the session's own
        # shared state.  ``_stats_lock`` guards the counters dict (plain
        # ``+=`` is not atomic), ``_refresh_lock`` serializes the dynamic
        # re-snapshot so exactly one thread rebuilds engines per version.
        self._stats_lock = threading.Lock()
        self._refresh_lock = threading.RLock()
        self.counters: Dict[str, int] = {
            "queries": 0,
            "batches": 0,
            "label_hits": 0,
            "label_misses": 0,
            "points_skipped_by_labels": 0,
            "timeouts": 0,
            "anytime_results": 0,
            "invalidations": 0,
            "parallel_queries": 0,
        }
        self._serial: Optional[MIOEngine] = None
        self._parallel: Optional[ParallelMIOEngine] = None
        if isinstance(source, DynamicMIO):
            self._dynamic: Optional[DynamicMIO] = source
            self._seen_version: Optional[int] = None
            self.collection: Optional[ObjectCollection] = None
            self.handle_of_position: List[int] = []
        elif isinstance(source, ObjectCollection):
            self._dynamic = None
            self._seen_version = None
            self.collection = source
            self.handle_of_position = list(range(source.n))
            self._build_engines()
        else:
            raise InvalidQueryError(
                "source must be an ObjectCollection or a DynamicMIO, "
                f"got {type(source).__name__}"
            )

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cross-query cache (labels, grid keys, lower bounds).

        Called automatically when a :class:`DynamicMIO` source mutates;
        callable directly when the caller knows its data changed under a
        static collection (e.g. after rebuilding the session's input).
        """
        self.label_store.clear()
        self.key_cache.clear()
        self.lower_cache.clear()
        with self._stats_lock:
            self.counters["invalidations"] += 1

    def _build_engines(self) -> None:
        if self._parallel is not None:
            # Retire the previous snapshot's worker pool: its shared-memory
            # block holds the old coordinates, so the rebuild is also the
            # shard tier's invalidation point.
            self._parallel.close()
        self._serial = MIOEngine(
            self.collection,
            backend=self.backend,
            label_store=self.label_store,
            label_reuse=self.label_reuse,
            key_cache=self.key_cache,
            lower_cache=self.lower_cache,
            tracer=self.tracer,
            kernel=self.kernel,
            planner=self.planner,
        )
        self._parallel = (
            ParallelMIOEngine(
                self.collection,
                cores=self.cores,
                backend=self.backend,
                label_store=self.label_store,
                label_reuse=self.label_reuse,
                retries=self.retries,
                key_cache=self.key_cache,
                tracer=self.tracer,
                kernel=self.kernel,
                mode=self.parallel_mode,
                shards=self.shards,
                planner=self.planner,
            )
            if self.cores > 1
            else None
        )

    def close(self) -> None:
        """Release the parallel engine's worker pool (idempotent).

        Only the sharded mode holds external resources (processes plus a
        shared-memory block); serial-only sessions make this a no-op.
        """
        if self._parallel is not None:
            self._parallel.close()

    def _refresh(self) -> None:
        """Re-snapshot a dynamic source; invalidate if it mutated.

        Version-checked and lock-guarded: concurrent service workers all
        pass through here before querying, and exactly one rebuilds the
        shared snapshot per observed mutation while the rest proceed on
        the (read-only) result.
        """
        if self._dynamic is None:
            return
        if self._serial is not None and self._seen_version == self._dynamic.version:
            return
        with self._refresh_lock:
            if self._serial is not None and self._seen_version == self._dynamic.version:
                return  # another worker already re-snapshotted this version
            collection, handles = self._dynamic.snapshot()
            if self._serial is not None:
                # The previous snapshot's positional caches are unsound for
                # the re-compacted collection even when every shape
                # coincides.
                self.invalidate()
            self.collection = collection
            self.handle_of_position = handles
            self._seen_version = self._dynamic.version
            self._build_engines()

    def handle_of(self, position: int) -> int:
        """Map a result's winner position to the source's stable handle."""
        if position < 0:
            return position
        return self.handle_of_position[position]

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------

    def query(
        self,
        r: float,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> MIOResult:
        """One MIO query through the session's warm caches."""
        self._refresh()
        return self._execute(
            normalize_request(QueryRequest(r=r, timeout_ms=timeout_ms, deadline=deadline)),
            catch_timeout=False,
        )

    def topk(
        self,
        r: float,
        k: int,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> MIOResult:
        """The top-k variant through the session's warm caches."""
        self._refresh()
        return self._execute(
            normalize_request(QueryRequest(r=r, k=k, timeout_ms=timeout_ms, deadline=deadline)),
            catch_timeout=False,
        )

    # Alias mirroring the engine's method name.
    query_topk = topk

    def query_many(self, requests: Iterable[RequestLike]) -> List[MIOResult]:
        """Run a batch of requests, maximizing cross-query reuse.

        Execution order groups requests by ``ceil(r)`` (ascending) and runs
        the largest ``r`` of each group first, so one labeling run serves
        the whole group; ties keep submission order.  Results come back in
        the *caller's* order.  A request whose deadline expires before
        verification yields an ``exact=False`` result with ``winner == -1``
        (no verified answer exists yet) instead of raising, so one slow
        request cannot poison its batch; an expiry during verification
        already degrades to the engine's anytime answer.
        """
        self._refresh()
        normalized = [normalize_request(spec) for spec in requests]
        if not normalized:
            return []
        tracer = ensure_tracer(self.tracer)
        logger = get_logger()
        batch_id = new_id("batch")

        def run_request(index: int) -> MIOResult:
            request = normalized[index]
            query_id = new_id("query")
            with tracer.span(
                "request",
                batch_id=batch_id,
                query_id=query_id,
                request_index=index,
                r=request.r,
                k=request.k,
            ), bind_trace_id(query_id):
                # The query id doubles as the request's trace id: the
                # pipeline's telemetry profile, the structured log line,
                # and the span all correlate on it.
                result = self._execute(request, catch_timeout=True)
            if logger.enabled:
                logger.log(
                    "query",
                    batch_id=batch_id,
                    query_id=query_id,
                    request_index=index,
                    r=request.r,
                    k=request.k,
                    algorithm=result.algorithm,
                    winner=result.winner,
                    score=result.score,
                    exact=result.exact,
                    seconds=result.total_time,
                )
            return result

        with tracer.span("batch", batch_id=batch_id, size=len(normalized)):
            # The pipeline's shared ceil(r)-grouped sweep (the same planner
            # MIOEngine.query_batch uses): the stable sort keeps submission
            # order within equal (ceiling, r) groups.
            results = run_grouped_sweep(
                [request.r for request in normalized], run_request
            )
        with self._stats_lock:
            self.counters["batches"] += 1
        obs_metrics.counter(
            "repro_batches_total", "Batched query_many calls completed"
        ).inc()
        if logger.enabled:
            logger.log(
                "batch",
                batch_id=batch_id,
                size=len(normalized),
                timeouts=sum(1 for res in results if res is not None and res.winner < 0),
                anytime=sum(1 for res in results if res is not None and not res.exact),
            )
        return results

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _pick_engine(self, ceil_r: int):
        """Serial unless labels for the ceiling exist and cores > 1.

        Labeling requires the canonical serial access order, so the first
        query of an unlabeled ceiling always runs serial; once labels
        exist, a multi-core session fans the remaining queries out.
        """
        if self._parallel is not None and self.label_store.has(ceil_r):
            return self._parallel
        return self._serial

    def _execute(self, request: QueryRequest, catch_timeout: bool) -> MIOResult:
        deadline = request.deadline
        if deadline is None:
            deadline = Deadline.from_timeout_ms(request.timeout_ms)
        engine = self._pick_engine(request.ceiling())
        try:
            if request.k == 1:
                result = engine.query(request.r, deadline=deadline)
            else:
                result = engine.query_topk(request.r, request.k, deadline=deadline)
        except QueryTimeout as exc:
            if not catch_timeout:
                raise
            result = self._timeout_result(request, exc)
        self._account(result, parallel=engine is self._parallel)
        return result

    def _timeout_result(self, request: QueryRequest, exc: QueryTimeout) -> MIOResult:
        """A degraded per-request answer for a pre-verification expiry.

        No verified lower bound exists before verification starts, so the
        result carries the sentinel ``winner == -1`` with score 0 (a valid,
        if vacuous, lower bound) and records where time ran out.
        """
        with self._stats_lock:
            self.counters["timeouts"] += 1
        phase = exc.phase or "filtering"
        result = MIOResult(
            algorithm="bigrid",
            r=request.r,
            winner=-1,
            score=0,
            exact=False,
            notes={
                "anytime": f"deadline expired during {phase} (no verified answer)",
                "degraded_deadline": phase,
            },
        )
        # The pipeline never completed, so its choke point never saw this
        # query; emit the degraded profile here so the slow-query log
        # captures every pre-verification expiry too.
        get_telemetry().observe_result(
            result,
            engine="session",
            r=request.r,
            k=request.k,
            ceil_r=request.ceiling(),
            n=self.collection.n if self.collection is not None else 0,
        )
        return result

    def _account(self, result: MIOResult, parallel: bool) -> None:
        """Fold one result into the session counters (and annotate it)."""
        with_label = result.algorithm.startswith("bigrid-label")
        skipped = 0
        if self.collection is not None and "mapped_points" in result.counters:
            skipped = self.collection.total_points - result.counters["mapped_points"]
        if not result.exact and "degraded_deadline" not in result.notes:
            # Every anytime answer names its degradation cause uniformly,
            # whichever layer produced it (engine verification timeout here,
            # pre-verification expiry in _timeout_result above).
            result.notes["degraded_deadline"] = "verification"
        verify_path = result.notes.get("verification_path")
        with self._stats_lock:
            self.counters["queries"] += 1
            if with_label:
                self.counters["label_hits"] += 1
            else:
                self.counters["label_misses"] += 1
            self.counters["points_skipped_by_labels"] += skipped
            if not result.exact:
                self.counters["anytime_results"] += 1
            if parallel:
                self.counters["parallel_queries"] += 1
            if verify_path:
                # Per-implementation tally (e.g. verify_path_numpy_batch):
                # which verification scorer actually served the session's
                # traffic, for `repro explain` and capacity planning.
                key = "verify_path_" + verify_path.replace("-", "_")
                self.counters[key] = self.counters.get(key, 0) + 1
        result.counters["session_label_hit"] = int(with_label)
        result.counters["session_points_skipped"] = skipped

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Merged session counters: reuse, cache hit/miss, degradations."""
        merged = dict(self.counters)
        merged.update(self.key_cache.counters())
        merged.update(self.lower_cache.counters())
        merged["label_store_hits"] = self.label_store.hits
        merged["label_store_misses"] = self.label_store.misses
        merged["label_ceilings"] = len(self.label_store.ceilings())
        if self._parallel is not None and self.parallel_mode == "sharded":
            merged["shard_plan_hits"] = self._parallel.plan_cache.hits
            merged["shard_plan_misses"] = self._parallel.plan_cache.misses
        if isinstance(self.planner, AdaptivePlanner):
            merged.update(self.planner.counters())
        return merged

    def __repr__(self) -> str:
        target = (
            f"dynamic v{self._dynamic.version}" if self._dynamic is not None
            else repr(self.collection)
        )
        return (
            f"QuerySession({target}, backend={self.backend!r}, cores={self.cores}, "
            f"queries={self.counters['queries']})"
        )
