"""EWAH: 64-bit Enhanced Word-Aligned Hybrid compressed bitmap.

This is the compressed bitset the paper plugs into BIGrid (reference [22],
Lemire et al., "Sorting improves word-aligned bitmap indexes").  An EWAH
stream alternates *marker* words and *dirty* (literal) words.  A marker
encodes a run of *clean* words (all zeros or all ones) followed by a count of
dirty words.  We keep the stream as a list of segments

    (run_bit, run_len, dirty_words)

which maps one-to-one onto marker words; :meth:`serialize` emits the
canonical on-disk marker format.  Word size is 64 bits.

Runs compress exactly the patterns the paper calls out: long ``00...0``
stretches from sparse space (most objects absent from a cell) and ``11...1``
stretches from dense space.  The cost of a binary operation is linear in the
*compressed* sizes of the operands, matching the paper's cost model
``cost(b, b') = O(size(b) + size(b'))`` (footnote 6).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.bitset.base import Bitset

WORD_BITS = 64
_ALL = (1 << WORD_BITS) - 1

# Field widths of the serialized marker word: 1 run bit, 32-bit run length,
# 31-bit dirty count (the layout used by the reference implementation).
_RUN_LEN_BITS = 32
_DIRTY_LEN_BITS = 31
_MAX_RUN_LEN = (1 << _RUN_LEN_BITS) - 1
_MAX_DIRTY_LEN = (1 << _DIRTY_LEN_BITS) - 1

_Segment = Tuple[int, int, List[int]]


class _Builder:
    """Accumulates 64-bit words into a canonical compressed segment list."""

    __slots__ = ("segments", "n_words", "cardinality")

    def __init__(self) -> None:
        self.segments: List[_Segment] = []
        self.n_words = 0
        self.cardinality = 0

    def append(self, word: int, count: int = 1) -> None:
        """Append ``count`` copies of ``word`` to the uncompressed stream."""
        if count <= 0:
            return
        self.n_words += count
        if word == 0 or word == _ALL:
            run_bit = 1 if word == _ALL else 0
            if run_bit:
                self.cardinality += WORD_BITS * count
            if self.segments:
                last_bit, last_len, last_dirty = self.segments[-1]
                if not last_dirty and last_bit == run_bit:
                    self.segments[-1] = (run_bit, last_len + count, last_dirty)
                    return
            self.segments.append((run_bit, count, []))
        else:
            self.cardinality += word.bit_count() * count
            if not self.segments:
                self.segments.append((0, 0, []))
            self.segments[-1][2].extend([word] * count)

    def finish(self) -> Tuple[List[_Segment], int, int]:
        """Drop trailing zero runs and return (segments, n_words, cardinality)."""
        while self.segments:
            run_bit, run_len, dirty = self.segments[-1]
            if dirty or run_bit:
                break
            self.segments.pop()
            self.n_words -= run_len
        return self.segments, self.n_words, self.cardinality


def _chunks(segments: List[_Segment]) -> Iterator[Tuple[int, int]]:
    """Yield (count, word) chunks of the uncompressed stream."""
    for run_bit, run_len, dirty in segments:
        if run_len:
            yield run_len, _ALL if run_bit else 0
        for word in dirty:
            yield 1, word


class _Cursor:
    """Stateful chunk reader that pads with infinite trailing zero words."""

    __slots__ = ("_iter", "_count", "_word", "exhausted")

    def __init__(self, segments: List[_Segment]) -> None:
        self._iter = _chunks(segments)
        self._count = 0
        self._word = 0
        self.exhausted = False
        self._advance_chunk()

    def _advance_chunk(self) -> None:
        try:
            self._count, self._word = next(self._iter)
        except StopIteration:
            self.exhausted = True
            self._count = 0
            self._word = 0

    def peek(self) -> Tuple[int, int]:
        """Return (available_count, word); exhausted cursors yield zeros."""
        if self.exhausted:
            return 1 << 62, 0
        return self._count, self._word

    def advance(self, count: int) -> None:
        if self.exhausted:
            return
        self._count -= count
        if self._count <= 0:
            self._advance_chunk()


class EWAHBitset(Bitset):
    """Mutable EWAH-compressed bit vector.

    Bits appended in increasing order (the access pattern of Algorithm 3,
    which scans objects ``o_0, o_1, ...``) take amortized O(1); setting an
    already-set bit is a no-op; setting an arbitrary earlier bit falls back
    to a rebuild, which the BIGrid algorithms never trigger on cell bitsets.
    """

    __slots__ = ("_segments", "_n_words", "_cardinality", "_int_cache")

    def __init__(self) -> None:
        self._segments: List[_Segment] = []
        self._n_words = 0
        self._cardinality = 0
        #: Lazily decoded big-int form; the query engine's hot loops operate
        #: on these (CPython big-int bitwise ops run in C) while the
        #: compressed stream remains the stored, accounted representation.
        self._int_cache: int | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_int(cls, value: int) -> "EWAHBitset":
        if value < 0:
            raise ValueError("bit patterns must be non-negative")
        builder = _Builder()
        while value:
            builder.append(value & _ALL)
            value >>= WORD_BITS
        return cls._from_builder(builder)

    @classmethod
    def _from_builder(cls, builder: _Builder) -> "EWAHBitset":
        bitset = cls()
        segments, n_words, cardinality = builder.finish()
        bitset._segments = segments
        bitset._n_words = n_words
        bitset._cardinality = cardinality
        return bitset

    def copy(self) -> "EWAHBitset":
        clone = EWAHBitset()
        clone._segments = [(bit, length, list(dirty)) for bit, length, dirty in self._segments]
        clone._n_words = self._n_words
        clone._cardinality = self._cardinality
        clone._int_cache = self._int_cache
        return clone

    # ------------------------------------------------------------------
    # Mutation and inspection
    # ------------------------------------------------------------------

    def set(self, index: int) -> None:
        if index < 0:
            raise ValueError("bit index must be non-negative")
        word_index, offset = divmod(index, WORD_BITS)
        if word_index >= self._n_words:
            self._append_bit(word_index, offset)
            self._int_cache = None
        elif not self.get(index):
            self._rebuild(self.to_int() | (1 << index))

    def _append_bit(self, word_index: int, offset: int) -> None:
        """Fast path: the new bit lies beyond every stored word."""
        gap = word_index - self._n_words
        if gap:
            if self._segments and not self._segments[-1][2] and self._segments[-1][0] == 0:
                bit, length, dirty = self._segments[-1]
                self._segments[-1] = (0, length + gap, dirty)
            else:
                self._segments.append((0, gap, []))
        if not self._segments:
            self._segments.append((0, 0, []))
        self._segments[-1][2].append(1 << offset)
        self._n_words = word_index + 1
        self._cardinality += 1

    def _rebuild(self, value: int) -> None:
        rebuilt = EWAHBitset.from_int(value)
        self._segments = rebuilt._segments
        self._n_words = rebuilt._n_words
        self._cardinality = rebuilt._cardinality
        self._int_cache = value

    def get(self, index: int) -> bool:
        if index < 0:
            raise ValueError("bit index must be non-negative")
        word_index, offset = divmod(index, WORD_BITS)
        if word_index >= self._n_words:
            return False
        position = 0
        for count, word in _chunks(self._segments):
            position += count
            if word_index < position:
                return bool((word >> offset) & 1)
        return False

    def cardinality(self) -> int:
        return self._cardinality

    def to_int(self) -> int:
        if self._int_cache is not None:
            return self._int_cache
        value = 0
        position = 0
        for count, word in _chunks(self._segments):
            if word == _ALL:
                value |= ((1 << (WORD_BITS * count)) - 1) << (WORD_BITS * position)
            elif word:
                value |= word << (WORD_BITS * position)
            position += count
        self._int_cache = value
        return value

    def iter_set_bits(self) -> Iterator[int]:
        position = 0
        for count, word in _chunks(self._segments):
            base = position * WORD_BITS
            if word == _ALL:
                yield from range(base, base + count * WORD_BITS)
            elif word:
                remaining = word
                while remaining:
                    low = remaining & -remaining
                    yield base + low.bit_length() - 1
                    remaining ^= low
            position += count

    def word_count(self) -> int:
        """Number of 64-bit words in the compressed stream (markers + dirty)."""
        total = 0
        for _bit, run_len, dirty in self._segments:
            markers = max(1, -(-run_len // _MAX_RUN_LEN), -(-len(dirty) // _MAX_DIRTY_LEN))
            total += markers + len(dirty)
        return total

    def uncompressed_word_count(self) -> int:
        """Number of 64-bit words an uncompressed bitmap would need."""
        return self._n_words

    def size_in_bytes(self) -> int:
        return 8 * self.word_count()

    def compression_ratio(self) -> float:
        """Fraction of bytes saved versus the uncompressed bitmap (0..1)."""
        if self._n_words == 0:
            return 0.0
        return 1.0 - self.word_count() / self._n_words

    # ------------------------------------------------------------------
    # Binary operations
    # ------------------------------------------------------------------

    def _binary(self, other: Bitset, op) -> "EWAHBitset":
        if not isinstance(other, EWAHBitset):
            other = EWAHBitset.from_int(other.to_int())
        builder = _Builder()
        cursor_a = _Cursor(self._segments)
        cursor_b = _Cursor(other._segments)
        total = max(self._n_words, other._n_words)
        position = 0
        while position < total:
            count_a, word_a = cursor_a.peek()
            count_b, word_b = cursor_b.peek()
            step = min(count_a, count_b, total - position)
            builder.append(op(word_a, word_b), step)
            cursor_a.advance(step)
            cursor_b.advance(step)
            position += step
        return EWAHBitset._from_builder(builder)

    def or_(self, other: Bitset) -> "EWAHBitset":
        return self._binary(other, lambda a, b: a | b)

    def and_(self, other: Bitset) -> "EWAHBitset":
        return self._binary(other, lambda a, b: a & b)

    def andnot(self, other: Bitset) -> "EWAHBitset":
        return self._binary(other, lambda a, b: a & (b ^ _ALL))

    def xor(self, other: Bitset) -> "EWAHBitset":
        return self._binary(other, lambda a, b: a ^ b)

    # ------------------------------------------------------------------
    # Serialization (canonical marker-word format)
    # ------------------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode as the marker/dirty 64-bit word stream, little endian."""
        words: List[int] = []
        for run_bit, run_len, dirty in self._segments:
            remaining_run = run_len
            remaining_dirty = list(dirty)
            emitted = False
            while remaining_run or remaining_dirty or not emitted:
                take_run = min(remaining_run, _MAX_RUN_LEN)
                take_dirty = min(len(remaining_dirty), _MAX_DIRTY_LEN)
                # A marker may carry a run and dirty words only once the run
                # is exhausted; emit run-only markers first.
                if take_run and take_run < remaining_run:
                    take_dirty = 0
                marker = run_bit | (take_run << 1) | (take_dirty << (1 + _RUN_LEN_BITS))
                words.append(marker)
                words.extend(remaining_dirty[:take_dirty])
                remaining_run -= take_run
                del remaining_dirty[:take_dirty]
                emitted = True
        return b"".join(word.to_bytes(8, "little") for word in words)

    @classmethod
    def deserialize(cls, data: bytes) -> "EWAHBitset":
        """Decode a stream produced by :meth:`serialize`."""
        if len(data) % 8:
            raise ValueError("EWAH stream length must be a multiple of 8 bytes")
        words = [int.from_bytes(data[i:i + 8], "little") for i in range(0, len(data), 8)]
        builder = _Builder()
        index = 0
        while index < len(words):
            marker = words[index]
            index += 1
            run_bit = marker & 1
            run_len = (marker >> 1) & _MAX_RUN_LEN
            dirty_len = marker >> (1 + _RUN_LEN_BITS)
            builder.append(_ALL if run_bit else 0, run_len)
            for _ in range(dirty_len):
                builder.append(words[index])
                index += 1
        return cls._from_builder(builder)


def union_all(bitsets: Iterable[EWAHBitset]) -> EWAHBitset:
    """OR together an iterable of EWAH bitsets (empty input -> empty bitset)."""
    result = EWAHBitset()
    for bitset in bitsets:
        result = result.or_(bitset)
    return result
