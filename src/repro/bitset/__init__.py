"""Bitset backends for the BIGrid index.

The paper stores one compressed bitset per grid cell (EWAH [22]) and notes
that BIGrid is orthogonal to the concrete compressed-bitset implementation
(footnote 3).  This package mirrors that: :class:`EWAHBitset` is a faithful
64-bit word-aligned hybrid bitmap, :class:`PlainBitset` is the uncompressed
baseline used by the compression ablation (footnote 4),
:class:`RoaringBitset` is the chunked-container alternative, and
:func:`bitset_class` selects a backend by name.
"""

from repro.bitset.base import Bitset
from repro.bitset.ewah import EWAHBitset
from repro.bitset.factory import (
    FALLBACK_CHAIN,
    available_backends,
    backend_available,
    bitset_class,
    resolve_backend,
)
from repro.bitset.plain import PlainBitset
from repro.bitset.roaring import RoaringBitset

__all__ = [
    "Bitset",
    "EWAHBitset",
    "PlainBitset",
    "RoaringBitset",
    "FALLBACK_CHAIN",
    "available_backends",
    "backend_available",
    "bitset_class",
    "resolve_backend",
]
