"""Backend selection for bitsets.

BIGrid is "orthogonal to any compressed bitset" (paper, footnote 3); the
engine and indexes therefore take a backend name and resolve the concrete
class here.  ``"ewah"`` is the paper's choice and the default; ``"plain"``
is the uncompressed ablation baseline; ``"roaring"`` is the chunked
container alternative.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.bitset.base import Bitset
from repro.bitset.ewah import EWAHBitset
from repro.bitset.plain import PlainBitset
from repro.bitset.roaring import RoaringBitset

_BACKENDS: Dict[str, Type[Bitset]] = {
    "ewah": EWAHBitset,
    "plain": PlainBitset,
    "roaring": RoaringBitset,
}


def available_backends() -> tuple:
    """Names accepted by :func:`bitset_class`."""
    return tuple(sorted(_BACKENDS))


def bitset_class(name: str) -> Type[Bitset]:
    """Resolve a backend name to its bitset class.

    Raises ``ValueError`` for unknown names, listing the valid options.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        options = ", ".join(available_backends())
        raise ValueError(f"unknown bitset backend {name!r} (choose from: {options})") from None
