"""Backend selection for bitsets, with a degradation chain.

BIGrid is "orthogonal to any compressed bitset" (paper, footnote 3); the
engine and indexes therefore take a backend name and resolve the concrete
class here.  ``"ewah"`` is the paper's choice and the default; ``"plain"``
is the uncompressed ablation baseline; ``"roaring"`` is the chunked
container alternative.

Because a backend is an optimization, never a correctness dependency, a
backend that is *unavailable* (its class advertises so, or the fault
harness marks it down) does not fail the query: :func:`resolve_backend`
walks the fallback chain ``requested -> ewah -> plain`` and reports which
backend actually ran so engines can record a ``degraded_backend`` note in
the query stats.  Only an unknown name — or a chain with no survivor —
raises :class:`~repro.errors.BackendUnavailableError`.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro import faults
from repro.bitset.base import Bitset
from repro.bitset.ewah import EWAHBitset
from repro.bitset.plain import PlainBitset
from repro.bitset.roaring import RoaringBitset
from repro.errors import BackendUnavailableError, InjectedFault

_BACKENDS: Dict[str, Type[Bitset]] = {
    "ewah": EWAHBitset,
    "plain": PlainBitset,
    "roaring": RoaringBitset,
}

#: Degradation order tried after the requested backend.
FALLBACK_CHAIN: Tuple[str, ...] = ("ewah", "plain")


def available_backends() -> tuple:
    """Names accepted by :func:`bitset_class`."""
    return tuple(sorted(_BACKENDS))


def bitset_class(name: str) -> Type[Bitset]:
    """Resolve a backend name to its bitset class.

    Raises :class:`BackendUnavailableError` (a ``ValueError``) for unknown
    names, listing the valid options.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        options = ", ".join(available_backends())
        raise BackendUnavailableError(
            f"unknown bitset backend {name!r} (choose from: {options})"
        ) from None


def backend_available(name: str) -> bool:
    """Whether one backend is currently usable.

    All bundled backends are pure Python and always importable; a class may
    opt out by defining ``is_available()``, and the fault harness can take a
    backend down through the ``"backend"`` injection point (matched against
    the backend name).
    """
    cls = _BACKENDS.get(name)
    if cls is None:
        return False
    probe = getattr(cls, "is_available", None)
    if probe is not None and not probe():
        return False
    try:
        faults.trip("backend", detail=name)
    except InjectedFault:
        return False
    return True


def resolve_backend(name: str) -> Tuple[Type[Bitset], str]:
    """The usable class for ``name``, degrading along :data:`FALLBACK_CHAIN`.

    Returns ``(cls, resolved_name)``; ``resolved_name != name`` signals a
    degraded query.  Unknown names and a fully-down chain raise
    :class:`BackendUnavailableError`.
    """
    if name not in _BACKENDS:
        options = ", ".join(available_backends())
        raise BackendUnavailableError(
            f"unknown bitset backend {name!r} (choose from: {options})"
        )
    chain = (name,) + tuple(entry for entry in FALLBACK_CHAIN if entry != name)
    for candidate in chain:
        if backend_available(candidate):
            return _BACKENDS[candidate], candidate
    raise BackendUnavailableError(
        f"no usable bitset backend: tried {', '.join(chain)}"
    )
