"""Roaring-style chunked bitmap.

The paper (footnote 3) notes BIGrid is orthogonal to the concrete
compressed bitset and that picking the optimal one is workload-dependent;
Roaring bitmaps are the other major contender next to the word-aligned
EWAH family.  This implementation follows Roaring's core design: the bit
space is split into 2^16-bit *chunks* keyed by the high 16 bits, and each
non-empty chunk stores whichever of three container forms is smallest:

* ``array``  -- sorted 16-bit values (2 bytes each), best when sparse;
* ``bitmap`` -- a fixed 8 KiB bit field, best when dense and irregular;
* ``run``    -- (start, length) pairs (4 bytes each), best for long runs.

Containers renormalize to the cheapest form after every mutation, so
``size_in_bytes`` always reflects the canonical Roaring choice.  Chunk
bitmaps are held as Python ints, which makes the per-chunk bitwise ops
C-speed and the container conversions straightforward.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.bitset.base import Bitset

CHUNK_BITS = 16
CHUNK_SIZE = 1 << CHUNK_BITS          # values per chunk
_CHUNK_MASK = CHUNK_SIZE - 1
_FULL_CHUNK = (1 << CHUNK_SIZE) - 1

#: Above this many values, an array container is never the smallest form.
ARRAY_LIMIT = 4096

ARRAY = "array"
BITMAP = "bitmap"
RUN = "run"

#: Fixed byte cost of a bitmap container (2^16 bits).
_BITMAP_BYTES = CHUNK_SIZE // 8
#: Per-container header: chunk key + type tag + cardinality.
_CONTAINER_HEADER = 8


class _Container:
    """One chunk's worth of bits, stored in its cheapest representation."""

    __slots__ = ("kind", "values", "bits", "runs", "cardinality")

    def __init__(self) -> None:
        self.kind = ARRAY
        self.values: List[int] = []
        self.bits = 0
        self.runs: List[Tuple[int, int]] = []
        self.cardinality = 0

    # -- conversions ----------------------------------------------------

    @classmethod
    def from_bits(cls, bits: int) -> "_Container":
        container = cls()
        container.bits = bits
        container.cardinality = bits.bit_count()
        container.kind = BITMAP
        container.normalize()
        return container

    def to_bits(self) -> int:
        if self.kind == BITMAP:
            return self.bits
        if self.kind == ARRAY:
            bits = 0
            for value in self.values:
                bits |= 1 << value
            return bits
        bits = 0
        for start, length in self.runs:
            bits |= ((1 << length) - 1) << start
        return bits

    def _as_runs(self, bits: int) -> List[Tuple[int, int]]:
        runs = []
        while bits:
            low = bits & -bits
            start = low.bit_length() - 1
            shifted = bits >> start
            length = (~shifted & (shifted + 1)).bit_length() - 1
            if length <= 0:
                length = shifted.bit_length()
            runs.append((start, length))
            bits &= ~(((1 << length) - 1) << start)
        return runs

    def normalize(self) -> None:
        """Re-encode as whichever container form is smallest in bytes."""
        bits = self.to_bits()
        cardinality = bits.bit_count()
        self.cardinality = cardinality
        runs = self._as_runs(bits)
        array_bytes = 2 * cardinality if cardinality <= ARRAY_LIMIT else None
        run_bytes = 4 * len(runs)
        candidates = [(run_bytes, RUN), (_BITMAP_BYTES, BITMAP)]
        if array_bytes is not None:
            candidates.append((array_bytes, ARRAY))
        candidates.sort()
        _, kind = candidates[0]
        self.kind = kind
        self.values = []
        self.runs = []
        self.bits = 0
        if kind == ARRAY:
            self.values = [run_start + offset for run_start, length in runs for offset in range(length)]
        elif kind == RUN:
            self.runs = runs
        else:
            self.bits = bits

    # -- inspection ------------------------------------------------------

    def get(self, offset: int) -> bool:
        if self.kind == BITMAP:
            return bool((self.bits >> offset) & 1)
        if self.kind == ARRAY:
            return offset in self.values  # containers are small; fine
        return any(start <= offset < start + length for start, length in self.runs)

    def iter_values(self) -> Iterator[int]:
        if self.kind == ARRAY:
            yield from self.values
        elif self.kind == RUN:
            for start, length in self.runs:
                yield from range(start, start + length)
        else:
            bits = self.bits
            while bits:
                low = bits & -bits
                yield low.bit_length() - 1
                bits ^= low

    def size_in_bytes(self) -> int:
        if self.kind == ARRAY:
            payload = 2 * len(self.values)
        elif self.kind == RUN:
            payload = 4 * len(self.runs)
        else:
            payload = _BITMAP_BYTES
        return _CONTAINER_HEADER + payload


class RoaringBitset(Bitset):
    """Mutable Roaring-style bit vector."""

    __slots__ = ("_containers",)

    def __init__(self) -> None:
        self._containers: Dict[int, _Container] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_indices(cls, indices) -> "RoaringBitset":
        """Bulk construction: one container build per touched chunk.

        Overrides the generic one-``set``-per-bit default, which would
        renormalize a container once per inserted bit (quadratic on dense
        chunks).
        """
        chunks: Dict[int, int] = {}
        for index in indices:
            if index < 0:
                raise ValueError("bit index must be non-negative")
            key = index >> CHUNK_BITS
            chunks[key] = chunks.get(key, 0) | (1 << (index & _CHUNK_MASK))
        bitset = cls()
        for key, bits in chunks.items():
            bitset._containers[key] = _Container.from_bits(bits)
        return bitset

    @classmethod
    def from_int(cls, value: int) -> "RoaringBitset":
        if value < 0:
            raise ValueError("bit patterns must be non-negative")
        bitset = cls()
        chunk_key = 0
        while value:
            chunk = value & _FULL_CHUNK
            if chunk:
                bitset._containers[chunk_key] = _Container.from_bits(chunk)
            value >>= CHUNK_SIZE
            chunk_key += 1
        return bitset

    def copy(self) -> "RoaringBitset":
        clone = RoaringBitset()
        for key, container in self._containers.items():
            clone._containers[key] = _Container.from_bits(container.to_bits())
        return clone

    # ------------------------------------------------------------------
    # Mutation and inspection
    # ------------------------------------------------------------------

    def set(self, index: int) -> None:
        if index < 0:
            raise ValueError("bit index must be non-negative")
        key, offset = index >> CHUNK_BITS, index & _CHUNK_MASK
        container = self._containers.get(key)
        bits = container.to_bits() if container is not None else 0
        updated = bits | (1 << offset)
        if updated != bits:
            self._containers[key] = _Container.from_bits(updated)

    def get(self, index: int) -> bool:
        if index < 0:
            raise ValueError("bit index must be non-negative")
        container = self._containers.get(index >> CHUNK_BITS)
        if container is None:
            return False
        return container.get(index & _CHUNK_MASK)

    def cardinality(self) -> int:
        return sum(container.cardinality for container in self._containers.values())

    def to_int(self) -> int:
        value = 0
        for key, container in self._containers.items():
            value |= container.to_bits() << (key * CHUNK_SIZE)
        return value

    def iter_set_bits(self) -> Iterator[int]:
        for key in sorted(self._containers):
            base = key * CHUNK_SIZE
            for offset in self._containers[key].iter_values():
                yield base + offset

    def size_in_bytes(self) -> int:
        return sum(container.size_in_bytes() for container in self._containers.values())

    def container_kinds(self) -> Dict[str, int]:
        """How many containers use each representation (for inspection)."""
        counts = {ARRAY: 0, BITMAP: 0, RUN: 0}
        for container in self._containers.values():
            counts[container.kind] += 1
        return counts

    # ------------------------------------------------------------------
    # Binary operations (chunk-aligned)
    # ------------------------------------------------------------------

    def _binary(self, other: Bitset, op, keep_unmatched_self: bool, keep_unmatched_other: bool) -> "RoaringBitset":
        if not isinstance(other, RoaringBitset):
            other = RoaringBitset.from_int(other.to_int())
        result = RoaringBitset()
        keys = set(self._containers)
        keys.update(other._containers)
        for key in keys:
            mine = self._containers.get(key)
            theirs = other._containers.get(key)
            if mine is None and not keep_unmatched_other:
                continue
            if theirs is None and not keep_unmatched_self:
                continue
            bits = op(
                mine.to_bits() if mine is not None else 0,
                theirs.to_bits() if theirs is not None else 0,
            )
            if bits:
                result._containers[key] = _Container.from_bits(bits)
        return result

    def or_(self, other: Bitset) -> "RoaringBitset":
        return self._binary(other, lambda a, b: a | b, True, True)

    def and_(self, other: Bitset) -> "RoaringBitset":
        return self._binary(other, lambda a, b: a & b, False, False)

    def andnot(self, other: Bitset) -> "RoaringBitset":
        return self._binary(other, lambda a, b: a & ~b, True, False)

    def xor(self, other: Bitset) -> "RoaringBitset":
        return self._binary(other, lambda a, b: a ^ b, True, True)
