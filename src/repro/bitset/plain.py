"""Uncompressed bitset backed by an arbitrary-precision integer.

This is the baseline the paper's footnote 4 compares EWAH against: every
cell bitset occupies ``ceil(n / 64)`` words regardless of content.  CPython
big-int bitwise operations run in C, so this backend is also the fastest
pure-Python option and serves as the semantic oracle for EWAH in tests.
"""

from __future__ import annotations

from typing import Iterator

from repro.bitset.base import Bitset

WORD_BITS = 64


class PlainBitset(Bitset):
    """Mutable uncompressed bit vector."""

    __slots__ = ("_value",)

    def __init__(self, value: int = 0) -> None:
        if value < 0:
            raise ValueError("bit patterns must be non-negative")
        self._value = value

    @classmethod
    def from_int(cls, value: int) -> "PlainBitset":
        return cls(value)

    def copy(self) -> "PlainBitset":
        return PlainBitset(self._value)

    def set(self, index: int) -> None:
        if index < 0:
            raise ValueError("bit index must be non-negative")
        self._value |= 1 << index

    def get(self, index: int) -> bool:
        if index < 0:
            raise ValueError("bit index must be non-negative")
        return bool((self._value >> index) & 1)

    def cardinality(self) -> int:
        return self._value.bit_count()

    def to_int(self) -> int:
        return self._value

    def iter_set_bits(self) -> Iterator[int]:
        value = self._value
        while value:
            low = value & -value
            yield low.bit_length() - 1
            value ^= low

    def size_in_bytes(self) -> int:
        """Whole 64-bit words up to the highest set bit (uncompressed cost)."""
        words = -(-self._value.bit_length() // WORD_BITS)
        return 8 * words

    def or_(self, other: Bitset) -> "PlainBitset":
        return PlainBitset(self._value | other.to_int())

    def and_(self, other: Bitset) -> "PlainBitset":
        return PlainBitset(self._value & other.to_int())

    def andnot(self, other: Bitset) -> "PlainBitset":
        return PlainBitset(self._value & ~other.to_int())

    def xor(self, other: Bitset) -> "PlainBitset":
        return PlainBitset(self._value ^ other.to_int())
