"""Common bitset interface.

Every backend represents a (conceptually unbounded) sequence of bits indexed
from 0, where bit ``i`` corresponds to object ``o_i`` of the collection.  The
operations below are exactly those the BIGrid algorithms need:

* ``set`` while building grid cells (Algorithm 3),
* ``|`` (bitwise OR) for lower/upper bounding (Algorithms 4 and 5),
* ``andnot`` (set difference) and ``cardinality`` for verification
  (Algorithm 6, where ``b <- b_adj(c) - b(o_i)`` and ``|b|`` drive pruning),
* ``iter_set_bits`` to enumerate candidate objects,
* ``size_in_bytes`` for the memory accounting reported in Figs. 5(f)-(j).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator


class Bitset(ABC):
    """Abstract bit vector keyed by object index."""

    __slots__ = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_indices(cls, indices: Iterable[int]) -> "Bitset":
        """Build a bitset with the given bit positions set."""
        bitset = cls()
        for index in sorted(set(indices)):
            bitset.set(index)
        return bitset

    @classmethod
    @abstractmethod
    def from_int(cls, value: int) -> "Bitset":
        """Build a bitset whose bit ``i`` is ``(value >> i) & 1``."""

    # ------------------------------------------------------------------
    # Mutation and inspection
    # ------------------------------------------------------------------

    @abstractmethod
    def set(self, index: int) -> None:
        """Set bit ``index`` to 1 (idempotent)."""

    @abstractmethod
    def get(self, index: int) -> bool:
        """Return whether bit ``index`` is 1."""

    @abstractmethod
    def cardinality(self) -> int:
        """Return the number of set bits (``|b|`` in the paper)."""

    @abstractmethod
    def to_int(self) -> int:
        """Return the bit pattern as an arbitrary-precision integer."""

    @abstractmethod
    def iter_set_bits(self) -> Iterator[int]:
        """Yield set bit positions in increasing order."""

    @abstractmethod
    def size_in_bytes(self) -> int:
        """Return the storage footprint of the encoded form."""

    # ------------------------------------------------------------------
    # Binary operations (pure: return a new bitset of the same backend)
    # ------------------------------------------------------------------

    @abstractmethod
    def or_(self, other: "Bitset") -> "Bitset":
        """Return ``self | other``."""

    @abstractmethod
    def and_(self, other: "Bitset") -> "Bitset":
        """Return ``self & other``."""

    @abstractmethod
    def andnot(self, other: "Bitset") -> "Bitset":
        """Return ``self & ~other`` (set difference)."""

    @abstractmethod
    def xor(self, other: "Bitset") -> "Bitset":
        """Return ``self ^ other``."""

    @abstractmethod
    def copy(self) -> "Bitset":
        """Return an independent copy."""

    # ------------------------------------------------------------------
    # Convenience / operator sugar
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """Return whether no bit is set."""
        return self.cardinality() == 0

    def __or__(self, other: "Bitset") -> "Bitset":
        return self.or_(other)

    def __and__(self, other: "Bitset") -> "Bitset":
        return self.and_(other)

    def __sub__(self, other: "Bitset") -> "Bitset":
        return self.andnot(other)

    def __xor__(self, other: "Bitset") -> "Bitset":
        return self.xor(other)

    def __contains__(self, index: int) -> bool:
        return self.get(index)

    def __len__(self) -> int:
        return self.cardinality()

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __iter__(self) -> Iterator[int]:
        return self.iter_set_bits()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self.to_int() == other.to_int()

    def __hash__(self) -> int:
        return hash(self.to_int())

    def __repr__(self) -> str:
        bits = list(self.iter_set_bits())
        preview = ", ".join(str(b) for b in bits[:8])
        suffix = ", ..." if len(bits) > 8 else ""
        return f"{type(self).__name__}({{{preview}{suffix}}})"
