"""Interaction analysis on top of the BIGrid machinery.

The paper's motivating applications don't stop at the single MIO answer:
neuroscientists inspect *which* neurons a hub connects to (rich-club
analysis [9]), and trajectory analysts extract the leader's nearby
trajectories (Fig. 2, [18]).  This module exposes those follow-up
analyses:

* :func:`interacting_partners` -- the set ``O_i`` of Equation (1) for one
  object: everything it interacts with under ``r``;
* :func:`all_scores` -- the full score vector ``tau(o)`` for every object
  (what NL/SG compute, but using the grid + bitset pruning);
* :func:`interaction_graph` -- the whole interaction graph as a
  ``networkx.Graph``, ready for hub/community analysis.

All three share one BIGrid build and one exact-scoring pass driven by the
same cell/posting pruning as Algorithm 6, so the graph costs roughly one
SG-style scoring sweep -- not the quadratic nested loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import networkx as nx
import numpy as np

from repro.core.objects import ObjectCollection
from repro.core.verification import bits_of
from repro.grid.bigrid import BIGrid


def _partner_sets(
    collection: ObjectCollection,
    r: float,
    backend: str = "ewah",
    bigrid: Optional[BIGrid] = None,
) -> List[Set[int]]:
    """``O_i`` for every object, via one grid build and a pruned sweep.

    Pairs are discovered once (from the smaller-oid side) and mirrored, so
    each interacting pair pays exactly one point-level confirmation.
    """
    if bigrid is None:
        bigrid = BIGrid.build(collection, r, backend=backend)
    large_grid = bigrid.large_grid
    r_squared = r * r
    partners: List[Set[int]] = [set() for _ in range(collection.n)]

    for oid in range(collection.n):
        # Objects already confirmed from the lower-oid side need no work;
        # bits below oid that are *not* yet partners can still be fresh
        # discoveries (the lower side may have found them via other cells),
        # so only confirmed partners and self are masked out.
        confirmed = 1 << oid
        for partner in partners[oid]:
            confirmed |= 1 << partner
        points = collection[oid].points
        for key, point_indices in bigrid.object_groups[oid].items():
            for point_index in point_indices:
                pending = large_grid.adjacent_union_int(key) & ~confirmed
                if not pending:
                    continue
                remaining = bits_of(pending)
                point = points[point_index]
                for cell in large_grid.cells[key].neighbor_cells:
                    for candidate in remaining.intersection(cell.postings):
                        candidate_points = cell.posting_points(
                            candidate, collection[candidate].points
                        )
                        diff = candidate_points - point
                        if np.einsum("ij,ij->i", diff, diff).min() <= r_squared:
                            confirmed |= 1 << candidate
                            partners[oid].add(candidate)
                            partners[candidate].add(oid)
                            remaining.discard(candidate)
                    if not remaining:
                        break
    return partners


def interacting_partners(
    collection: ObjectCollection,
    r: float,
    oid: int,
    backend: str = "ewah",
) -> List[int]:
    """The objects ``o_i`` interacts with under ``r`` (Equation (1)'s O_i)."""
    if not 0 <= oid < collection.n:
        raise ValueError(f"oid must be in [0, {collection.n})")
    return sorted(_partner_sets(collection, r, backend)[oid])


def all_scores(
    collection: ObjectCollection,
    r: float,
    backend: str = "ewah",
) -> List[int]:
    """The exact score vector ``tau(o)`` for every object."""
    return [len(partner_set) for partner_set in _partner_sets(collection, r, backend)]


def interaction_graph(
    collection: ObjectCollection,
    r: float,
    backend: str = "ewah",
) -> nx.Graph:
    """The interaction graph: nodes are object ids, edges are interactions.

    Node attributes carry the point count; the graph is ready for the
    motivating analyses (degree ranking recovers the MIO answer,
    ``nx.community`` finds flocks, rich-club coefficients find hub sets).
    """
    graph = nx.Graph()
    for obj in collection:
        graph.add_node(obj.oid, num_points=obj.num_points)
    for oid, partner_set in enumerate(_partner_sets(collection, r, backend)):
        for partner in partner_set:
            if partner > oid:
                graph.add_edge(oid, partner)
    return graph


def score_histogram(scores: List[int]) -> Dict[int, int]:
    """Score frequency table (the distribution the Syn dataset controls)."""
    histogram: Dict[int, int] = {}
    for score in scores:
        histogram[score] = histogram.get(score, 0) + 1
    return dict(sorted(histogram.items()))
