"""Adaptive-planner overhead guard and static-sweep comparison.

The planner's acceptance bar has two halves:

* **single queries** -- a cold adaptive engine (statistics capture, one
  candidate sweep through the cost model, plan application) stays
  within :data:`RATIO_BOUND` of the untouched static engine.  Paired
  alternating rounds with a min-ratio estimator, as in
  ``test_obs_overhead.py``: slow-machine drift hits both sides alike,
  while a real per-query regression floors every round's ratio;
* **recorded workloads** -- across the static kernel configurations the
  engine could have been pinned to, the adaptive session must never
  lose to the *worst* static choice, and must match (within the same
  ratio bound) the *best* one.  This is the planner's reason to exist:
  an oracle that costs more than it saves would be net harm.

Results land in ``results/BENCH_planner.json`` (with the shared
provenance stamp), which ``repro report --check-bench`` re-checks
against the same floors.
"""

import json
import time

from repro.bench.harness import bench_provenance
from repro.bench.reporting import format_table
from repro.core.engine import MIOEngine
from repro.kernels import numpy_kernel_available
from repro.planner import AdaptivePlanner
from repro.session import QuerySession

from conftest import RESULTS_DIR, best_of

DATASET = "neuron"
SINGLE_R = 6.0
#: Mixed ceilings with repeats: exercises per-group planning, memo hits,
#: and the with-label replay path a warm session actually runs.
WORKLOAD = [4.0, 6.0, 8.0, 4.2, 6.3, 8.1]
ROUNDS = 5
#: Bound on the minimum paired adaptive/static ratio.
RATIO_BOUND = 1.05

#: Static kernel configurations the engine could have been pinned to.
STATIC_KERNELS = ("python", "numpy") if numpy_kernel_available() else ("python",)


def _run_workload(collection, kernel=None, planner="static"):
    """One cold session through the workload; (seconds, answers, plans)."""
    session = QuerySession(
        collection,
        kernel=kernel if kernel is not None else "auto",
        planner=planner,
    )
    started = time.perf_counter()
    results = [session.query(r) for r in WORKLOAD]
    elapsed = time.perf_counter() - started
    answers = [(result.winner, result.score) for result in results]
    plans = [result.notes.get("plan", "") for result in results]
    return elapsed, answers, plans


def test_single_query_overhead(datasets, report):
    collection = datasets[DATASET]

    def run_static():
        started = time.perf_counter()
        result = MIOEngine(collection).query(SINGLE_R)
        return time.perf_counter() - started, (result.winner, result.score)

    def run_adaptive():
        started = time.perf_counter()
        result = MIOEngine(collection, planner="adaptive").query(SINGLE_R)
        return time.perf_counter() - started, (result.winner, result.score)

    run_static(), run_adaptive()  # warm-up: caches, allocator, imports

    rounds = []
    for index in range(ROUNDS):
        if index % 2 == 0:
            static_seconds, static_answer = run_static()
            adaptive_seconds, adaptive_answer = run_adaptive()
        else:
            adaptive_seconds, adaptive_answer = run_adaptive()
            static_seconds, static_answer = run_static()
        assert adaptive_answer == static_answer
        rounds.append((static_seconds, adaptive_seconds))

    best_ratio = min(adaptive / static for static, adaptive in rounds)
    lines = [
        "Adaptive-planner single-query overhead (paired rounds)",
        f"  {'round':>5} {'static s':>9} {'adaptive s':>11} {'ratio':>7}",
    ]
    for index, (static_seconds, adaptive_seconds) in enumerate(rounds):
        lines.append(
            f"  {index:>5} {static_seconds:>9.4f} {adaptive_seconds:>11.4f}"
            f" {adaptive_seconds / static_seconds:>7.3f}"
        )
    lines.append(f"  best ratio: {best_ratio:.3f} (bound: {RATIO_BOUND:.2f})")
    report("planner_overhead", "\n".join(lines))
    assert best_ratio <= RATIO_BOUND, (
        f"adaptive engine ran at {best_ratio:.3f}x the static engine in "
        f"its best round (bound {RATIO_BOUND:.2f}x): the planning stage "
        "costs more than it may"
    )


def test_workload_never_loses_to_static_sweep(datasets, report):
    collection = datasets[DATASET]
    configs = [f"static-{kernel}" for kernel in STATIC_KERNELS]

    # One planner persists across the adaptive rounds: its cost model
    # calibrates from each round's observed phase timings, which is how
    # a long-lived session or service would actually run it.  The seeds
    # are order-of-magnitude guesses; convergence to this host's real
    # coefficients (and with them the right kernel choice) is the
    # behavior under test, so the min-over-rounds estimator below reads
    # the *calibrated* rounds, not the cold first pass.
    planner = AdaptivePlanner()

    # Warm-up every path once, plus two extra calibration passes for the
    # planner: the acceptance bar reads the converged regime.
    for kernel in STATIC_KERNELS:
        _run_workload(collection, kernel=kernel)
    _run_workload(collection, planner=planner)
    _run_workload(collection, planner=planner)

    timings = {name: [] for name in configs + ["adaptive"]}
    reference_answers = None
    decisions = []
    # Paired per-round ratios: every round times the full static sweep
    # and the adaptive session back to back, so machine drift hits all
    # columns of a round alike and the min-ratio estimator below cannot
    # be rescued (or sunk) by one lucky absolute timing.
    for _ in range(4):
        for kernel in STATIC_KERNELS:
            seconds, answers, _ = _run_workload(collection, kernel=kernel)
            timings[f"static-{kernel}"].append(seconds)
            if reference_answers is None:
                reference_answers = answers
            assert answers == reference_answers
        seconds, answers, plans = _run_workload(collection, planner=planner)
        timings["adaptive"].append(seconds)
        assert answers == reference_answers  # the planner never touches answers
        decisions = plans

    seconds_by_config = {name: min(times) for name, times in timings.items()}
    adaptive_seconds = seconds_by_config.pop("adaptive")
    best_name = min(seconds_by_config, key=seconds_by_config.get)
    worst_name = max(seconds_by_config, key=seconds_by_config.get)
    vs_best = min(
        adaptive / min(timings[name][index] for name in configs)
        for index, adaptive in enumerate(timings["adaptive"])
    )
    vs_worst = min(
        adaptive / max(timings[name][index] for name in configs)
        for index, adaptive in enumerate(timings["adaptive"])
    )
    # With one kernel available best == worst and only the overhead
    # bound applies; with several, losing to the worst static pin means
    # the planner made things worse than no planner at all could.
    worst_bound = RATIO_BOUND if len(seconds_by_config) == 1 else 1.0

    point = {
        "bench": "planner",
        "dataset": DATASET,
        "workload": WORKLOAD,
        "identical_answers": True,
        "adaptive_seconds": round(adaptive_seconds, 6),
        "static_seconds": {
            name: round(seconds, 6) for name, seconds in seconds_by_config.items()
        },
        "adaptive_vs_best_static": round(vs_best, 4),
        "adaptive_vs_worst_static": round(vs_worst, 4),
        "ratio_bound": RATIO_BOUND,
        "decisions": decisions,
        "provenance": bench_provenance(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_planner.json", "w") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")

    rows = [
        [name, round(seconds, 4), round(adaptive_seconds / seconds, 3)]
        for name, seconds in sorted(seconds_by_config.items())
    ]
    rows.append(["adaptive", round(adaptive_seconds, 4), 1.0])
    report(
        "planner_workload",
        format_table(
            ["configuration", "workload [s]", "adaptive/static"],
            rows,
            title=f"Adaptive vs static sweep over {DATASET} ({len(WORKLOAD)} queries)",
        ),
    )
    assert vs_worst <= worst_bound, (
        f"adaptive workload ran at {vs_worst:.3f}x the WORST static "
        f"configuration ({worst_name}); bound {worst_bound:.2f}x"
    )
    assert vs_best <= RATIO_BOUND, (
        f"adaptive workload ran at {vs_best:.3f}x the BEST static "
        f"configuration ({best_name}); bound {RATIO_BOUND:.2f}x"
    )
