"""Fig. 7: top-k MIO query run time vs k.

BIGrid's top-k variant (k-th lower bound as the pruning threshold, top-k
heap in verification) across k in {1, 2, 4, 8, 16}.  Paper shapes:

* run time grows with k (a smaller threshold prunes less) but stays well
  below the score-everything competitors, whose cost is k-independent;
* answers match NL's full ranking at every k.
"""

import pytest

from repro.baselines import NestedLoopAlgorithm
from repro.bench.reporting import format_series
from repro.core.engine import MIOEngine

from conftest import ALL_DATASETS, DEFAULT_R

K_VALUES = [1, 2, 4, 8, 16]


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_fig7_topk(dataset_name, datasets, report, benchmark):
    collection = datasets[dataset_name]
    engine = MIOEngine(collection)
    truth = sorted(NestedLoopAlgorithm(collection).scores(DEFAULT_R), reverse=True)

    def sweep():
        times = []
        verified = []
        for k in K_VALUES:
            result = engine.query_topk(DEFAULT_R, k)
            assert [score for _, score in result.topk] == truth[:k]
            times.append(result.total_time)
            verified.append(result.counters["verified_objects"])
        return times, verified

    times, verified = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"fig7_topk_{dataset_name}",
        format_series(
            "k",
            K_VALUES,
            {"bigrid [s]": times, "verified objects": verified},
            title=f"Fig. 7 analogue ({dataset_name}): top-k run time [s] vs k at r={DEFAULT_R}",
        ),
    )

    # More of the candidate list must be verified as k grows.
    assert verified[-1] >= verified[0]
    # Top-k stays efficient: far fewer objects verified than exist, even at
    # the largest k (the pruning the paper highlights).
    assert verified[-1] < collection.n
