"""Appendix A: why offline BIGrid building (for a fixed r') does not pay.

Two measured demonstrations on the Neuron-2 analogue:

1. **Correctness breaks.**  With an offline grid built for r' != r,
   Lemma 1 / Lemma 2 no longer hold: a small grid sized for r' > r
   "certifies" pairs that are farther than r (lower bounds exceed true
   scores), and a large grid sized for r' < r misses within-r pairs in
   non-adjacent cells (upper bounds fall below true scores).  The bench
   counts the violations.

2. **No cost advantage.**  Grid mapping is a single O(nm) pass and is a
   minority of the total query time, so rebuilding per query (the paper's
   online choice) costs little -- there is no meaningful saving for an
   offline grid to realize even if it were correct.
"""

from repro.baselines.nested_loop import brute_force_scores
from repro.bench.reporting import format_table
from repro.core.engine import MIOEngine
from repro.core.lower_bound import compute_lower_bounds
from repro.core.upper_bound import compute_upper_bounds
from repro.grid.bigrid import BIGrid
from repro.grid.keys import large_cell_width, small_cell_width

DATASET = "neuron-2"
R_QUERY = 4.0


def _bound_violations(collection, r_query, r_offline):
    """(lower-bound violations, upper-bound violations) under an offline grid."""
    bigrid = BIGrid.build(
        collection,
        r=r_query,
        small_width=small_cell_width(r_offline, collection.dimension),
        large_width=large_cell_width(r_offline),
    )
    truth = brute_force_scores(collection, r_query)
    lower = compute_lower_bounds(bigrid).values
    upper = compute_upper_bounds(bigrid, tau_max_low=0).values
    lower_bad = sum(1 for oid in range(collection.n) if lower[oid] > truth[oid])
    upper_bad = sum(1 for oid in range(collection.n) if upper[oid] < truth[oid])
    return lower_bad, upper_bad


def test_appendix_a_offline_grids(datasets, report, benchmark):
    collection = datasets[DATASET]

    def collect():
        rows = []
        for r_offline in (2.0, R_QUERY, 8.0):
            lower_bad, upper_bad = _bound_violations(collection, R_QUERY, r_offline)
            rows.append([r_offline, R_QUERY, lower_bad, upper_bad])
        online = MIOEngine(collection).query(R_QUERY)
        build_fraction = online.phases["grid_mapping"] / online.total_time
        return rows, build_fraction

    rows, build_fraction = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "appendixA_offline",
        format_table(
            ["grid r'", "query r", "lower-bound violations", "upper-bound violations"],
            rows,
            title=(
                "Appendix A analogue: bound violations with offline grids "
                f"(dataset {DATASET}); online grid build is "
                f"{100.0 * build_fraction:.0f}% of query time"
            ),
        ),
    )

    matched = next(row for row in rows if row[0] == R_QUERY)
    too_small = next(row for row in rows if row[0] < R_QUERY)
    too_large = next(row for row in rows if row[0] > R_QUERY)
    # The online grid (r' == r) is sound.
    assert matched[2] == 0 and matched[3] == 0
    # r' < r: the large grid misses within-r pairs => upper bounds break.
    assert too_small[3] > 0
    # r' > r: the small grid over-certifies => lower bounds break.
    assert too_large[2] > 0
    # Rebuilding online is affordable: grid mapping is a minority cost.
    assert build_fraction < 0.75
