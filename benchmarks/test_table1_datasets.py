"""Table I: dataset statistics.

Regenerates the paper's dataset table for the scaled analogues, alongside
the original sizes, and checks the analogues keep the paper's n : m shape
(Neuron: few big objects; Bird: many small objects; Syn: the largest n).
"""

from repro.bench.reporting import format_table
from repro.datasets import dataset_table


def test_table1_dataset_statistics(benchmark, report):
    rows = benchmark.pedantic(dataset_table, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "n", "m", "nm", "dim", "unit", "paper n", "paper m", "paper nm"],
        [
            [
                row["dataset"],
                row["n"],
                row["m"],
                row["nm"],
                row["dim"],
                row["unit"],
                row["paper_n"],
                row["paper_m"],
                row["paper_nm"],
            ]
            for row in rows
        ],
        title="Table I analogue: dataset statistics (scaled, same n:m shape)",
    )
    report("table1_datasets", table)

    by_name = {row["dataset"]: row for row in rows}
    # Shape checks mirroring the paper's Table I.
    assert by_name["neuron"]["n"] < by_name["neuron-2"]["n"]
    assert by_name["neuron"]["m"] > by_name["neuron-2"]["m"]
    assert by_name["bird"]["n"] > by_name["bird-2"]["n"]
    assert by_name["bird"]["m"] < by_name["bird-2"]["m"]
    assert by_name["syn"]["n"] == max(row["n"] for row in rows)
    # Same unit structure as the paper.
    assert by_name["neuron"]["unit"] == "micrometer"
    assert by_name["bird"]["unit"] == "meter"
