"""Ablation: the paper's claim that MBR-based filtering is ineffective.

Section II-B argues that bounding-rectangle indices do not help MIO
processing because the objects (arbors, trajectories) are elongated and
their MBRs are mostly empty space.  We test the claim directly: plain NL
versus NL with a per-pair MBR pre-check versus NL behind an STR-packed
R-tree, on the stringy real-data analogues and, as a control, on a dataset
of compact blobs where MBRs *should* work.

Reported per dataset: the fraction of object pairs the MBR check discards,
and the resulting speed ratio.
"""

import numpy as np

from repro.baselines.nested_loop import NestedLoopAlgorithm
from repro.baselines.rtree_nl import RTreeNestedLoop
from repro.bench.reporting import format_table
from repro.core.geometry import boxes_within
from repro.core.objects import ObjectCollection

from conftest import DEFAULT_R


def _mbr_discard_fraction(collection, r):
    bounds = [obj.bounds() for obj in collection]
    discarded = 0
    total = 0
    for i in range(collection.n):
        for j in range(i + 1, collection.n):
            total += 1
            if not boxes_within(*bounds[i], *bounds[j], r=r):
                discarded += 1
    return discarded / total if total else 0.0


def _compact_blobs(n=200, points=30, seed=3):
    """Control dataset: small round blobs, the MBR-friendly case."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 600.0, size=(n, 2))
    arrays = [center + rng.normal(0, 1.5, size=(points, 2)) for center in centers]
    return ObjectCollection.from_point_arrays(arrays)


def test_ablation_mbr_filtering(datasets, report, benchmark):
    cases = [
        ("neuron (stringy 3-D)", datasets["neuron"]),
        ("bird-2 (trajectories)", datasets["bird-2"]),
        ("compact blobs (control)", _compact_blobs()),
    ]

    def collect():
        rows = []
        for label, collection in cases:
            discard = _mbr_discard_fraction(collection, DEFAULT_R)
            plain = NestedLoopAlgorithm(collection).query(DEFAULT_R)
            filtered = NestedLoopAlgorithm(collection, use_bbox_filter=True).query(DEFAULT_R)
            rtree = RTreeNestedLoop(collection).query(DEFAULT_R)
            assert plain.score == filtered.score == rtree.score
            rows.append(
                [
                    label,
                    f"{100.0 * discard:.0f}%",
                    round(plain.total_time, 3),
                    round(filtered.total_time, 3),
                    round(rtree.total_time, 3),
                    round(plain.total_time / filtered.total_time, 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "ablation_mbr",
        format_table(
            ["dataset", "pairs MBR-discarded", "NL [s]", "NL+MBR [s]", "NL+R-tree [s]", "speedup"],
            rows,
            title=f"Ablation: MBR pre-filtering for NL at r={DEFAULT_R} (Sec. II-B claim)",
        ),
    )

    by_label = {row[0]: row for row in rows}
    stringy_discard = float(by_label["neuron (stringy 3-D)"][1].rstrip("%"))
    control_discard = float(by_label["compact blobs (control)"][1].rstrip("%"))
    # The paper's claim: elongated objects defeat MBR filtering, while the
    # compact control is exactly where MBRs shine.
    assert control_discard > stringy_discard + 20.0
    assert control_discard > 80.0
