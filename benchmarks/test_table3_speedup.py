"""Table III: speedup ratio against the single-core run.

BIGrid and BIGrid-label on the Neuron and Bird analogues (the paper's
Table III datasets), t in {1, 2, 4, 6, 8, 10, 12}.  Paper shapes asserted:

* speedup grows monotonically (within noise) with the core count;
* speedup is sublinear (merging and barriers bound it, as in the paper's
  5-6x at t=12);
* every configuration returns the exact answer.
"""

import pytest

from repro.bench.reporting import format_series
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.parallel.engine import ParallelMIOEngine

from conftest import DEFAULT_R, best_of

CORE_COUNTS = [1, 2, 4, 6, 8, 10, 12]
TABLE3_DATASETS = ("neuron", "bird")


@pytest.mark.parametrize("dataset_name", TABLE3_DATASETS)
def test_table3_speedup(dataset_name, datasets, report, benchmark):
    collection = datasets[dataset_name]
    store = LabelStore()
    expected = MIOEngine(collection, label_store=store).query(DEFAULT_R).score

    def sweep():
        # Warm-up: the very first query pays cache/allocator warm-up that
        # would otherwise inflate the t=1 baseline (and fake superlinear
        # speedups).
        ParallelMIOEngine(collection, cores=1, mode="simulated").query(DEFAULT_R)
        speedups = {"bigrid": [], "bigrid-label": []}
        base = {}
        for cores in CORE_COUNTS:
            for name, kwargs in (
                ("bigrid", {}),
                ("bigrid-label", {"label_store": store}),
            ):
                def run_once(name=name, kwargs=kwargs, cores=cores):
                    result = ParallelMIOEngine(
                        collection, cores=cores, mode="simulated", **kwargs
                    ).query(DEFAULT_R)
                    assert result.score == expected
                    return result.total_time

                elapsed = best_of(run_once)
                if cores == 1:
                    base[name] = elapsed
                speedups[name].append(base[name] / elapsed)
        return speedups

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"table3_speedup_{dataset_name}",
        format_series(
            "t",
            CORE_COUNTS,
            {name: [round(v, 3) for v in values] for name, values in speedups.items()},
            title=f"Table III analogue ({dataset_name}): speedup vs single core",
        ),
    )

    for name, values in speedups.items():
        # More cores help: t=12 clearly beats t=2, t=2 beats t=1.
        assert values[1] > 1.2, name
        assert values[-1] > values[1], name
        # But sublinearly (barriers, merges, serial residue); the margin
        # absorbs residual noise between the baseline and t=12 runs.
        assert values[-1] < CORE_COUNTS[-1] * 1.1, name
