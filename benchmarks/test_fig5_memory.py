"""Fig. 5(f)-(j): index memory usage vs distance threshold r.

Measures the footprint of SG's grid, the BIGrid, and the BIGrid built with
labels (which drops label(p)=0** points).  Paper shapes asserted:

* all indexes shrink as r grows (fewer, larger cells);
* BIGrid uses more memory than SG (bitsets + two grids) but stays within
  a small constant factor;
* BIGrid-label never uses more memory than BIGrid.
"""

import pytest

from repro.bench import run_algorithm
from repro.bench.reporting import format_series

from conftest import ALL_DATASETS, R_VALUES


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_fig5_memory_sweep(dataset_name, datasets, label_stores, report, benchmark):
    collection = datasets[dataset_name]
    store = label_stores[dataset_name]

    def sweep():
        series = {"sg": [], "bigrid": [], "bigrid-label": []}
        for r in R_VALUES:
            for name in series:
                record = run_algorithm(
                    name,
                    collection,
                    r,
                    dataset=dataset_name,
                    label_store=store if name == "bigrid-label" else None,
                )
                series[name].append(record.memory_bytes / 1024.0)
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "r",
        R_VALUES,
        {f"{name} [KiB]": values for name, values in series.items()},
        title=f"Fig. 5(f)-(j) analogue ({dataset_name}): index memory [KiB] vs r",
    )
    report(f"fig5_memory_{dataset_name}", table)

    # Memory shrinks as r grows.
    for name, values in series.items():
        assert values[-1] < values[0], f"{name} memory should shrink with r"
    # BIGrid > SG but affordable; labels never increase the index.
    for index in range(len(R_VALUES)):
        assert series["bigrid"][index] > series["sg"][index]
        assert series["bigrid"][index] < series["sg"][index] * 20
        assert series["bigrid-label"][index] <= series["bigrid"][index] * 1.01
