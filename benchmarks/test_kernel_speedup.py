"""Compute-kernel speedup: vectorized ``numpy`` vs the ``python`` oracle.

The kernel layer (:mod:`repro.kernels`) promises the same answers with
vectorized phase computations.  This bench runs paired BIGrid queries —
identical dataset, r, and bitset backend, only the kernel differs — on
figure workloads (the Fig. 5/6 datasets at the paper's default r, full
scale and the Fig. 6 s=0.5 sampling point) and records per-phase plus
end-to-end ratios in ``results/BENCH_kernel_speedup.json``.

Acceptance gates: both kernels must return identical answers and
counters, numpy must win end-to-end on every workload here, and the best
workload must clear a 3x end-to-end speedup.
"""

import json

from repro.bench.harness import bench_provenance, run_algorithm
from repro.bench.reporting import format_table
from repro.datasets import sample_collection
from repro.kernels import numpy_kernel_available

import pytest

from conftest import DEFAULT_R, RESULTS_DIR, best_of

#: (label, dataset, Fig. 6 sampling rate) — all at the paper's default r.
WORKLOADS = [
    ("neuron-2", "neuron-2", 1.0),
    ("neuron-2 s=0.5", "neuron-2", 0.5),
    ("neuron s=0.5", "neuron", 0.5),
]

#: The flagship claim: at least one figure workload runs >= 3x faster
#: end to end under the numpy kernel.
TARGET_SPEEDUP = 3.0


@pytest.mark.skipif(
    not numpy_kernel_available(), reason="numpy kernel unavailable here"
)
def test_kernel_speedup(datasets, report, benchmark):
    points = []

    def measure():
        rows = []
        for label, dataset, rate in WORKLOADS:
            collection = datasets[dataset]
            if rate < 1.0:
                collection = sample_collection(collection, rate, seed=17)
            records = {}
            for kernel in ("python", "numpy"):
                best = None

                def run_once(kernel=kernel, collection=collection):
                    return run_algorithm(
                        "bigrid", collection, DEFAULT_R, dataset=dataset,
                        kernel=kernel,
                    )

                for _ in range(5):
                    record = run_once()
                    if best is None or record.seconds < best.seconds:
                        best = record
                records[kernel] = best
            rows.append((label, records["python"], records["numpy"]))
        return rows

    rows = benchmark.pedantic(lambda: best_of(lambda: measure(), repeats=1),
                              rounds=1, iterations=1)

    table_rows = []
    for label, py_record, np_record in rows:
        # Same answer, same work: the kernels differ only in wall-clock.
        assert (py_record.winner, py_record.score) == (
            np_record.winner, np_record.score,
        ), label
        assert py_record.counters == np_record.counters, label
        assert py_record.memory_bytes == np_record.memory_bytes, label

        ratio = py_record.seconds / np_record.seconds
        phase_ratios = {
            phase: round(seconds / np_record.phases[phase], 4)
            if np_record.phases.get(phase) else None
            for phase, seconds in py_record.phases.items()
        }
        points.append({
            "workload": label,
            "r": DEFAULT_R,
            "python_seconds": round(py_record.seconds, 6),
            "numpy_seconds": round(np_record.seconds, 6),
            "speedup": round(ratio, 4),
            "python_phases": {k: round(v, 6) for k, v in py_record.phases.items()},
            "numpy_phases": {k: round(v, 6) for k, v in np_record.phases.items()},
            "phase_speedups": phase_ratios,
            "winner": py_record.winner,
            "score": py_record.score,
        })
        table_rows.append([
            label,
            round(py_record.seconds, 3),
            round(np_record.seconds, 3),
            round(ratio, 2),
        ])

    speedups = [point["speedup"] for point in points]
    # numpy must never lose on these workloads, and the best one must
    # clear the headline end-to-end target.
    assert min(speedups) > 1.0
    assert max(speedups) >= TARGET_SPEEDUP

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_kernel_speedup.json", "w") as handle:
        json.dump(
            {"bench": "kernel_speedup", "r": DEFAULT_R, "target": TARGET_SPEEDUP,
             "provenance": bench_provenance(), "workloads": points},
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")

    report(
        "kernel_speedup",
        format_table(
            ["workload", "python [s]", "numpy [s]", "speedup"],
            table_rows,
            title="BIGrid end-to-end: numpy kernel vs python reference",
        ),
    )
