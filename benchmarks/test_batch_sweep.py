"""The Section III-D workload: a fine-grained threshold sweep.

The paper motivates label reuse with analysts issuing many MIO queries at
nearby thresholds.  This bench runs a six-query sweep inside one ceiling
bucket twice: label-free (every query from scratch) and as
``query_batch`` (first query labels, the rest run WITH-LABEL), and
reports per-dataset totals.  Shape asserted: the batch never loses, and
on the datasets where labels prune well it wins clearly.
"""

from repro.bench.reporting import format_table
from repro.core.engine import MIOEngine

from conftest import ALL_DATASETS, best_of

SWEEP = [4.9, 4.1, 4.3, 4.5, 4.7, 4.8]  # all ceil to 5


def test_batch_sweep_with_labels(datasets, report, benchmark):
    def collect():
        rows = []
        for name in ALL_DATASETS:
            collection = datasets[name]

            observed_scores = []

            def run_plain():
                engine = MIOEngine(collection)
                results = [engine.query(r) for r in SWEEP]
                observed_scores.append([result.score for result in results])
                return sum(result.total_time for result in results)

            def run_batch():
                engine = MIOEngine(collection)
                results = engine.query_batch(SWEEP)
                observed_scores.append([result.score for result in results])
                return sum(result.total_time for result in results)

            plain_time = best_of(run_plain)
            batch_time = best_of(run_batch)
            # Every run (plain or batch, either repeat) saw identical scores.
            assert all(scores == observed_scores[0] for scores in observed_scores)
            rows.append(
                [name, round(plain_time, 3), round(batch_time, 3),
                 round(plain_time / batch_time, 2)]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "batch_sweep",
        format_table(
            ["dataset", "6 queries plain [s]", "6 queries batch [s]", "speedup"],
            rows,
            title="Section III-D workload: same-ceiling sweep, labels off vs on",
        ),
    )

    speedups = [row[3] for row in rows]
    # The batch never loses materially, and helps overall.
    assert all(speedup > 0.9 for speedup in speedups)
    assert max(speedups) > 1.2
