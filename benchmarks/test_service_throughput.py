"""Service throughput under concurrency, steady load, and overload.

Three phases over one real HTTP server (ephemeral port, threaded
clients):

1. **capacity probe** -- serial requests establish per-query service
   time, from which the offered rates below are derived;
2. **steady phase** -- concurrent closed-loop clients at roughly the
   measured capacity: everything should be served, overwhelmingly exact;
3. **overload phase** -- at least 2x capacity of *offered* load against
   a small admission queue.  The robustness acceptance bar from the
   issue: excess load is shed with 429s, the p99 of *served* requests
   stays within 2x the request deadline, and no request ever sees a raw
   5xx.

The numbers (QPS, latency percentiles, shed/degraded rates) land in
``results/BENCH_service_throughput.json`` so later PRs can track them.
"""

import json
import threading
import time

from repro.bench.harness import bench_provenance
from repro.datasets import load_dataset
from repro.errors import ReproError, ServiceOverloadedError
from repro.service import MIOServer, ServiceApp, ServiceClient, ServiceConfig

from conftest import RESULTS_DIR

DATASET = "neuron"
R = 4.0
DEADLINE_MS = 2000.0
MAX_INFLIGHT = 4
MAX_QUEUE = 4


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_phase(server, app, clients, requests_per_client):
    """Closed-loop clients firing back-to-back queries; returns raw stats."""
    host, port = server.address
    lock = threading.Lock()
    latencies, outcomes = [], []

    def client_loop():
        client = ServiceClient(host, port, max_retries=0, timeout_s=60.0)
        for _ in range(requests_per_client):
            started = time.perf_counter()
            try:
                payload = client.query(R, timeout_ms=DEADLINE_MS)
                outcome = "exact" if payload["exact"] else "degraded"
            except ServiceOverloadedError:
                outcome = "shed"
            except ReproError as exc:  # structured failure: count, never raise
                outcome = f"error:{type(exc).__name__}"
            elapsed = time.perf_counter() - started
            with lock:
                outcomes.append(outcome)
                if outcome in ("exact", "degraded"):
                    latencies.append(elapsed)

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    wall = time.perf_counter() - started

    latencies.sort()
    served = sum(1 for o in outcomes if o in ("exact", "degraded"))
    return {
        "clients": clients,
        "requests": len(outcomes),
        "wall_s": round(wall, 3),
        "qps": round(served / wall, 2) if wall else 0.0,
        "served": served,
        "shed": outcomes.count("shed"),
        "degraded": outcomes.count("degraded"),
        "errors": sum(1 for o in outcomes if o.startswith("error:")),
        "shed_rate": round(outcomes.count("shed") / len(outcomes), 4),
        "degraded_rate": round(outcomes.count("degraded") / max(1, served), 4),
        "p50_ms": round(percentile(latencies, 0.50) * 1000.0, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1000.0, 2),
        "p99_ms": round(percentile(latencies, 0.99) * 1000.0, 2),
    }


def test_service_throughput_and_overload(report):
    collection = load_dataset(DATASET)
    app = ServiceApp(
        collection,
        ServiceConfig(
            port=0, max_inflight=MAX_INFLIGHT, max_queue=MAX_QUEUE,
            default_timeout_ms=DEADLINE_MS, max_timeout_ms=DEADLINE_MS,
        ),
    )
    server = MIOServer(app).start()
    try:
        # Phase 1: capacity probe (serial, warm caches).
        host, port = server.address
        probe = ServiceClient(host, port, max_retries=0, timeout_s=60.0)
        probe.query(R, timeout_ms=DEADLINE_MS)  # warm labels + key caches
        times = []
        for _ in range(5):
            started = time.perf_counter()
            probe.query(R, timeout_ms=DEADLINE_MS)
            times.append(time.perf_counter() - started)
        service_time_s = sorted(times)[len(times) // 2]

        # Phase 2: steady load -- as many closed-loop clients as execution
        # slots, so offered load tracks capacity.
        steady = run_phase(server, app, clients=MAX_INFLIGHT,
                           requests_per_client=8)

        # Phase 3: overload -- 4x the execution slots with a 4-deep queue
        # sheds aggressively by construction (offered >= 2x capacity).
        overload = run_phase(server, app, clients=4 * MAX_INFLIGHT,
                             requests_per_client=8)
    finally:
        server.shutdown_gracefully()

    payload = {
        "dataset": DATASET,
        "r": R,
        "deadline_ms": DEADLINE_MS,
        "max_inflight": MAX_INFLIGHT,
        "max_queue": MAX_QUEUE,
        "serial_service_time_ms": round(service_time_s * 1000.0, 2),
        "provenance": bench_provenance(
            cores=app.primary.cores,
            parallel_mode=(
                app.primary.parallel_mode if app.primary.cores > 1 else "serial"
            ),
            shards=(
                (app.primary.shards or app.primary.cores)
                if app.primary.cores > 1 else 0
            ),
        ),
        "steady": steady,
        "overload": overload,
        "service": {
            key: value
            for key, value in app.snapshot().items()
            if key not in ("session",)
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_service_throughput.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    lines = [
        f"service throughput over {DATASET} (r={R}, "
        f"inflight={MAX_INFLIGHT}, queue={MAX_QUEUE})",
        f"  serial service time : {payload['serial_service_time_ms']} ms",
    ]
    for name, phase in (("steady", steady), ("overload", overload)):
        lines.append(
            f"  {name:<8}: {phase['qps']} qps served, "
            f"p50/p95/p99 = {phase['p50_ms']}/{phase['p95_ms']}/"
            f"{phase['p99_ms']} ms, shed {phase['shed']}/{phase['requests']}, "
            f"degraded {phase['degraded']}"
        )
    report("service_throughput", "\n".join(lines))

    # The robustness acceptance bar.
    assert steady["errors"] == 0 and overload["errors"] == 0
    assert steady["served"] == steady["requests"] - steady["shed"]
    # Under >= 2x overload the bounded queue sheds rather than collapsing...
    assert overload["shed"] > 0
    # ...and every non-shed request was served (nothing vanished or 500ed).
    assert overload["served"] + overload["shed"] == overload["requests"]
    # Served tail latency stays within 2x the deadline: queue wait is
    # bounded by the budget and execution by the anytime degrade.
    assert overload["p99_ms"] <= 2.0 * DEADLINE_MS
