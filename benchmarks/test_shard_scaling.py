"""Real shard-parallel speedup: sharded workers vs the serial engine.

PR 9 replaced the simulated-makespan parallel engine with true
multiprocess shard execution, and this bench records what that buys in
wall-clock terms on a Fig. 6 workload (neuron at s=0.5, the paper's
default r).  The contract has two halves:

1. **parity** -- the sharded answer must be bit-identical to the serial
   one (winner, score, and full ranking), every run;
2. **scaling** -- on a host with at least 4 cpus, the sharded engine
   must clear a 2x end-to-end speedup over serial.

Both land in ``results/BENCH_shard_scaling.json`` with an honest
provenance stamp (cpu count, worker count, mode, shard count), so
``repro report --check-bench`` enforces the speedup floor only where the
hardware could physically meet it -- a one-core CI container records the
parity result and its (sub-1x) ratio without pretending it measured
scaling.
"""

import json
import os
import time

from repro.bench.harness import bench_provenance
from repro.core.engine import MIOEngine
from repro.datasets import sample_collection
from repro.obs.telemetry.report import SHARD_SCALING_FLOOR, SHARD_SCALING_MIN_CPUS
from repro.parallel.engine import ParallelMIOEngine

from conftest import DEFAULT_R, RESULTS_DIR

DATASET = "neuron"
SAMPLE_RATE = 0.5
K = 4
REPEATS = 5
MAX_WORKERS = 4


def _best_wall_clock(run, repeats=REPEATS):
    """Best-of wall-clock seconds around ``run`` (returns last result too)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_shard_scaling(datasets, report, benchmark):
    collection = sample_collection(datasets[DATASET], SAMPLE_RATE, seed=17)
    cpu_count = os.cpu_count() or 1
    workers = max(1, min(MAX_WORKERS, cpu_count))

    serial = MIOEngine(collection, kernel="numpy")
    sharded = ParallelMIOEngine(
        collection, cores=workers, kernel="numpy", mode="sharded"
    )
    try:
        # Warm both paths outside the timed region: the serial engine
        # fills its key caches, the sharded engine spawns its worker
        # pool and fills the shard-plan cache -- one-time costs a
        # long-running service amortizes away.
        serial_result = serial.query_topk(DEFAULT_R, K)
        sharded_result = sharded.query_topk(DEFAULT_R, K)

        def measure():
            serial_seconds, serial_result = _best_wall_clock(
                lambda: serial.query_topk(DEFAULT_R, K)
            )
            sharded_seconds, sharded_result = _best_wall_clock(
                lambda: sharded.query_topk(DEFAULT_R, K)
            )
            return serial_seconds, serial_result, sharded_seconds, sharded_result

        serial_seconds, serial_result, sharded_seconds, sharded_result = (
            benchmark.pedantic(measure, rounds=1, iterations=1)
        )
    finally:
        sharded.close()

    # Parity is unconditional: sharded execution is a performance
    # feature, never an answer change.
    identical = (
        serial_result.winner == sharded_result.winner
        and serial_result.score == sharded_result.score
        and serial_result.topk == sharded_result.topk
    )
    assert identical, (
        f"sharded answer diverged: serial ({serial_result.winner}, "
        f"{serial_result.score}) vs sharded ({sharded_result.winner}, "
        f"{sharded_result.score})"
    )
    assert sharded_result.exact
    assert sharded_result.counters.get("shards") == workers

    speedup = serial_seconds / sharded_seconds if sharded_seconds else 0.0
    floor_applies = cpu_count >= SHARD_SCALING_MIN_CPUS and workers >= SHARD_SCALING_MIN_CPUS

    payload = {
        "bench": "shard_scaling",
        "dataset": f"{DATASET} s={SAMPLE_RATE}",
        "r": DEFAULT_R,
        "k": K,
        "n": len(collection),
        "workers": workers,
        "shards": workers,
        "serial_seconds": round(serial_seconds, 6),
        "sharded_seconds": round(sharded_seconds, 6),
        "speedup": round(speedup, 4),
        "identical_answers": identical,
        "floor": SHARD_SCALING_FLOOR,
        "floor_applies": floor_applies,
        "winner": serial_result.winner,
        "score": serial_result.score,
        "sharded_counters": {
            key: int(value) for key, value in sorted(sharded_result.counters.items())
        },
        "provenance": bench_provenance(
            cores=workers, parallel_mode="sharded", shards=workers
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_shard_scaling.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report(
        "shard_scaling",
        "\n".join([
            f"shard scaling over {DATASET} s={SAMPLE_RATE} "
            f"(r={DEFAULT_R}, k={K}, {workers} workers, {cpu_count} cpus)",
            f"  serial  : {serial_seconds * 1000:.2f} ms",
            f"  sharded : {sharded_seconds * 1000:.2f} ms",
            f"  speedup : {speedup:.2f}x "
            + ("(floor enforced)" if floor_applies
               else f"(floor waived: < {SHARD_SCALING_MIN_CPUS} cpus)"),
        ]),
    )

    # The CI-enforced floor -- only where the hardware can meet it.
    if floor_applies:
        assert speedup >= SHARD_SCALING_FLOOR, (
            f"sharded speedup {speedup:.2f}x below the "
            f"{SHARD_SCALING_FLOOR}x floor on a {cpu_count}-cpu host"
        )
