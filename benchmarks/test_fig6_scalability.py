"""Fig. 6: scalability vs object sampling rate s.

For each dataset, samples s*n objects (s in {0.25, 0.5, 0.75, 1.0}) and
measures run time and index memory at the default r.  Paper shapes
asserted:

* BIGrid and BIGrid-label run times grow (roughly linearly) with s and
  stay below SG and NL at full scale;
* NL grows super-linearly (its pair count is quadratic), so its time
  ratio between s=1.0 and s=0.5 exceeds the object ratio;
* BIGrid memory grows linearly with s.
"""

import pytest

from repro.bench import run_algorithm
from repro.bench.reporting import format_series
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.datasets import sample_collection

from conftest import ALL_DATASETS, DEFAULT_R, NL_DATASETS, best_of

SAMPLING_RATES = [0.25, 0.5, 0.75, 1.0]


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_fig6_scalability(dataset_name, datasets, report, benchmark):
    collection = datasets[dataset_name]
    algorithms = (["nl"] if dataset_name in NL_DATASETS else []) + [
        "sg",
        "bigrid",
        "bigrid-label",
    ]

    def sweep():
        times = {name: [] for name in algorithms}
        memory = {name: [] for name in ("sg", "bigrid", "bigrid-label")}
        for rate in SAMPLING_RATES:
            sampled = sample_collection(collection, rate, seed=17)
            store = LabelStore()
            MIOEngine(sampled, label_store=store).query(DEFAULT_R)  # warm labels
            scores = set()
            for name in algorithms:
                def run_once(name=name, sampled=sampled, store=store):
                    record = run_algorithm(
                        name,
                        sampled,
                        DEFAULT_R,
                        dataset=dataset_name,
                        label_store=store if name == "bigrid-label" else None,
                    )
                    scores.add(record.score)
                    if name in memory:
                        last_memory[name] = record.memory_bytes / 1024.0
                    return record.seconds

                last_memory = {}
                times[name].append(best_of(run_once))
                if name in memory:
                    memory[name].append(last_memory[name])
            assert len(scores) == 1
        return times, memory

    times, memory = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"fig6_time_{dataset_name}",
        format_series(
            "s",
            SAMPLING_RATES,
            {f"{n} [s]": times[n] for n in algorithms},
            title=f"Fig. 6 analogue ({dataset_name}): run time [s] vs sampling rate",
        ),
    )
    report(
        f"fig6_memory_{dataset_name}",
        format_series(
            "s",
            SAMPLING_RATES,
            {f"{n} [KiB]": memory[n] for n in memory},
            title=f"Fig. 6(f)-(j) analogue ({dataset_name}): memory [KiB] vs sampling rate",
        ),
    )

    # Work grows with scale for every algorithm.
    for name in algorithms:
        assert times[name][-1] > times[name][0]
    # BIGrid beats SG at full scale, and NL does not pull ahead of it; the
    # tolerances absorb run-to-run noise on the smallest dataset, where
    # BIGrid and NL genuinely sit within noise of each other at r=4 (the
    # asymptotic gap needs the paper's 300-2000x larger data).
    assert times["bigrid"][-1] < times["sg"][-1] * 1.2
    if "nl" in times:
        assert times["bigrid"][-1] < times["nl"][-1] * 1.5
        # NL's growth is super-linear in n: s=0.25 -> 1.0 multiplies the
        # pair count by 16; even with early-exit luck the time must grow
        # far more than the 4x object count.
        assert times["nl"][-1] > times["nl"][0] * 3.0
    # Memory scales roughly linearly with s for BIGrid.
    ratio = memory["bigrid"][-1] / memory["bigrid"][0]
    assert 2.0 < ratio < 8.0
