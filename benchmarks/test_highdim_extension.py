"""Future-work extension: MIO beyond 3 dimensions.

The paper's conclusion leaves high-dimensional MIO open because grids
degrade with dimension.  This bench evaluates the repository's metric
(bounding-sphere) filter-and-verify engine across dimensions: run time and
pruning stay flat as d grows (the bounds are O(n^2 d), not O(3^d)), and the
answer matches brute force everywhere.  It also confirms the division of
labour: in the paper's 2-D/3-D scope, the grid-based BIGrid engine remains
the faster choice.
"""

import math

from repro.bench.reporting import format_series
from repro.core.engine import MIOEngine
from repro.highdim import HighDimCollection, MetricMIOEngine, make_highdim_clusters

DIMENSIONS = [2, 3, 4, 6, 8, 12]
N_OBJECTS = 120
MEAN_POINTS = 8
R = 4.0


def test_highdim_dimension_sweep(report, benchmark):
    def sweep():
        times = []
        candidate_fractions = []
        scores = []
        for dimension in DIMENSIONS:
            # Per-axis spread scales as 1/sqrt(d) so the objects' bounding
            # radii -- and hence the geometry of the problem -- stay fixed
            # while only the dimension grows.
            collection = make_highdim_clusters(
                n=N_OBJECTS,
                mean_points=MEAN_POINTS,
                dimension=dimension,
                n_clusters=10,
                extent=300.0,
                cluster_radius=1.2 / math.sqrt(dimension),
                seed=dimension,
            )
            engine = MetricMIOEngine(collection)
            result = engine.query(R)
            truth = engine.brute_force_scores(R)
            assert result.score == max(truth)
            times.append(result.total_time)
            candidate_fractions.append(result.counters["candidates"] / collection.n)
            scores.append(result.score)
        return times, candidate_fractions, scores

    times, fractions, scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "highdim_extension",
        format_series(
            "d",
            DIMENSIONS,
            {
                "metric-mio [s]": times,
                "candidate fraction": [round(f, 3) for f in fractions],
                "max score": scores,
            },
            title=(
                f"Future-work extension: metric MIO vs dimension "
                f"(n={N_OBJECTS}, m={MEAN_POINTS}, r={R})"
            ),
        ),
    )

    # Pruning does not collapse with dimension (the grid would).
    assert max(fractions) < 0.9
    assert fractions[-1] <= fractions[0] * 3.0
    # Run time stays in the same ballpark from d=2 to d=12.
    assert times[-1] < times[0] * 10.0


def test_lowdim_grids_still_win(datasets, report, benchmark):
    """In the paper's 2-D/3-D scope the BIGrid engine beats the metric one."""

    def measure():
        collection = datasets["bird-2"]
        grid_time = MIOEngine(collection).query(R).total_time
        hd_collection = HighDimCollection([obj.points for obj in collection])
        metric_engine = MetricMIOEngine(hd_collection)
        metric_result = metric_engine.query(R)
        grid_result = MIOEngine(collection).query(R)
        assert metric_result.score == grid_result.score
        return grid_time, metric_result.total_time

    grid_time, metric_time = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "highdim_lowdim_comparison",
        "BIGrid vs metric engine on bird-2 (2-D, r=4): "
        f"bigrid {grid_time:.3f}s, metric {metric_time:.3f}s",
    )
    # Trajectory MBR-style spheres overlap heavily in 2-D; the grid engine
    # should win (that is exactly why the paper uses grids in low d).
    assert grid_time < metric_time * 2.0