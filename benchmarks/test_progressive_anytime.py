"""Extension: anytime MIO — how fast the optimality gap closes.

The framework's bounds make it an anytime algorithm (docs/labels.md's
interactivity motivation): after bounding alone there is already a
certified interval on the optimum, and each verified candidate tightens
it.  This bench records, per dataset, the interval after bounding and the
number of verifications needed to certify the exact answer — typically a
tiny fraction of the candidate list.
"""

from repro.bench.reporting import format_table
from repro.progressive import query_progressive

from conftest import ALL_DATASETS, DEFAULT_R


def test_anytime_gap_closure(datasets, report, benchmark):
    def collect():
        rows = []
        for name in ALL_DATASETS:
            collection = datasets[name]
            states = list(query_progressive(collection, DEFAULT_R))
            first, final = states[0], states[-1]
            assert final.is_final
            rows.append(
                [
                    name,
                    f"[{first.best_score}, {first.score_upper_bound}]",
                    final.best_score,
                    final.candidates_verified,
                    first.candidates_total,
                    round(100.0 * final.candidates_verified / max(1, first.candidates_total), 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "progressive_anytime",
        format_table(
            [
                "dataset",
                "interval after bounding",
                "exact answer",
                "verifications to certify",
                "candidates",
                "% verified",
            ],
            rows,
            title=f"Anytime MIO at r={DEFAULT_R}: certified-gap closure",
        ),
    )

    for row in rows:
        # Certification needs only a minority of the candidate list.
        assert row[3] <= row[4]
        assert row[5] < 60.0
