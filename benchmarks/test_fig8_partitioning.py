"""Fig. 8: partitioning approaches for parallel lower-/upper-bounding.

Compares, across core counts, the simulated makespans of

* LB-greedy-d (objects split by |o_i.L|)  vs  LB-hash-p (per-object key
  split with local-bitset merging), and
* UB-greedy-p (Eq. (3) cost-based key groups) vs UB-greedy-d (objects
  split by |P_i|).

Paper shapes asserted: the greedy cost-based plans scale with cores (their
makespan at t=8 is well below t=1), and UB-greedy-p beats UB-greedy-d.
"""

import pytest

from repro.bench.reporting import format_series
from repro.parallel.engine import ParallelMIOEngine

from conftest import DEFAULT_R

CORE_COUNTS = [1, 2, 4, 8, 12]
FIG8_DATASETS = ("neuron", "bird-2")


@pytest.mark.parametrize("dataset_name", FIG8_DATASETS)
def test_fig8_partitioning(dataset_name, datasets, report, benchmark):
    collection = datasets[dataset_name]

    def sweep():
        lb = {"LB-greedy-d": [], "LB-hash-p": []}
        ub = {"UB-greedy-p": [], "UB-greedy-d": []}
        for cores in CORE_COUNTS:
            for label, strategy in (("LB-greedy-d", "greedy-d"), ("LB-hash-p", "hash-p")):
                engine = ParallelMIOEngine(collection, cores=cores, lb_strategy=strategy, mode="simulated")
                lb[label].append(engine.query(DEFAULT_R).phases["lower_bounding"])
            for label, strategy in (("UB-greedy-p", "greedy-p"), ("UB-greedy-d", "greedy-d")):
                engine = ParallelMIOEngine(collection, cores=cores, ub_strategy=strategy, mode="simulated")
                ub[label].append(engine.query(DEFAULT_R).phases["upper_bounding"])
        return lb, ub

    lb, ub = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"fig8_lower_{dataset_name}",
        format_series(
            "cores",
            CORE_COUNTS,
            {f"{n} [s]": v for n, v in lb.items()},
            title=f"Fig. 8 analogue ({dataset_name}): parallel lower-bounding makespan",
        ),
    )
    report(
        f"fig8_upper_{dataset_name}",
        format_series(
            "cores",
            CORE_COUNTS,
            {f"{n} [s]": v for n, v in ub.items()},
            title=f"Fig. 8 analogue ({dataset_name}): parallel upper-bounding makespan",
        ),
    )

    # The cost-based greedy plans exploit the cores.
    assert lb["LB-greedy-d"][-1] < lb["LB-greedy-d"][0]
    assert ub["UB-greedy-p"][-1] < ub["UB-greedy-p"][0] / 2.0
    # The paper's winners at high core counts.  At our scale both
    # upper-bounding plans balance within noise of each other (phase
    # makespans are a few ms), so assert "comparable or better" rather
    # than a strict win; LB-greedy-d's advantage over LB-hash-p (no
    # per-object merge barrier) is the robust signal.
    assert ub["UB-greedy-p"][-1] <= ub["UB-greedy-d"][-1] * 1.3
    assert lb["LB-greedy-d"][-1] <= lb["LB-hash-p"][-1] * 1.3
