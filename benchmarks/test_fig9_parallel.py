"""Fig. 9: parallel NL / SG / BIGrid / BIGrid-label vs number of cores.

Simulated makespans across core counts.  Paper shapes asserted:

* BIGrid and BIGrid-label keep improving with more cores;
* BIGrid remains fastest among the label-free algorithms at every core
  count, and BIGrid-label is at least as fast as BIGrid;
* all algorithms agree on the answer at every configuration.
"""

import pytest

from repro.bench.reporting import format_series
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.parallel.engine import (
    ParallelMIOEngine,
    parallel_nested_loop,
    parallel_simple_grid,
)

from conftest import DEFAULT_R, best_of

CORE_COUNTS = [1, 2, 4, 8, 12]
FIG9_DATASETS = ("neuron", "bird-2")


@pytest.mark.parametrize("dataset_name", FIG9_DATASETS)
def test_fig9_parallel_algorithms(dataset_name, datasets, report, benchmark):
    collection = datasets[dataset_name]
    store = LabelStore()
    expected = MIOEngine(collection, label_store=store).query(DEFAULT_R).score

    def sweep():
        series = {"nl": [], "sg": [], "bigrid": [], "bigrid-label": []}
        for cores in CORE_COUNTS:
            def run_nl():
                result = parallel_nested_loop(collection, DEFAULT_R, cores)
                assert result.score == expected
                return result.total_time

            def run_sg():
                result = parallel_simple_grid(collection, DEFAULT_R, cores)
                assert result.score == expected
                return result.total_time

            def run_bigrid():
                result = ParallelMIOEngine(collection, cores=cores, mode="simulated").query(DEFAULT_R)
                assert result.score == expected
                return result.total_time

            def run_labeled():
                result = ParallelMIOEngine(
                    collection, cores=cores, label_store=store,
                    mode="simulated",
                ).query(DEFAULT_R)
                assert result.algorithm == "bigrid-label-parallel"
                assert result.score == expected
                return result.total_time

            series["nl"].append(best_of(run_nl))
            series["sg"].append(best_of(run_sg))
            series["bigrid"].append(best_of(run_bigrid))
            series["bigrid-label"].append(best_of(run_labeled))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"fig9_parallel_{dataset_name}",
        format_series(
            "cores",
            CORE_COUNTS,
            {f"{n} [s]": v for n, v in series.items()},
            title=(
                f"Fig. 9 analogue ({dataset_name}): simulated parallel run time "
                f"[s] vs cores at r={DEFAULT_R}"
            ),
        ),
    )

    # BIGrid scales with cores.
    assert series["bigrid"][-1] < series["bigrid"][0] / 1.5
    # BIGrid is the fastest label-free algorithm over the sweep (point
    # comparisons at a single core count are noise-sensitive at this scale).
    assert sum(series["bigrid"]) < sum(series["sg"])
    assert sum(series["bigrid"]) < sum(series["nl"])
    # Labels help (or at least never hurt) under parallelism too.
    assert sum(series["bigrid-label"]) <= sum(series["bigrid"]) * 1.15
