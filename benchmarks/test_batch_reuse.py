"""Warm-vs-cold session reuse on one analyst workload (PR 2 tentpole).

The claim behind :class:`~repro.session.QuerySession` is that a *warm*
session answers a same-ceiling threshold sweep strictly faster than cold
single-shot engines, without changing a single answer.  This bench runs
the Section III-D style workload through the harness's ``bigrid-session``
mode and records the first machine-readable trajectory point
(``results/BENCH_batch_reuse.json``) so later PRs can track the speedup
over time instead of eyeballing ascii tables.
"""

import json

from repro.bench.harness import bench_provenance, run_algorithm
from repro.bench.reporting import format_table
from repro.session import QuerySession

from conftest import RESULTS_DIR, best_of

DATASET = "bird-2"
#: Six thresholds in one ceiling bucket (all ceil to 5), like the paper's
#: fine-grained analyst sweep.
WORKLOAD = [4.9, 4.1, 4.3, 4.5, 4.7, 4.8]


def _merge_phases(records):
    """Workload-total per-phase seconds across a sweep's records."""
    merged = {}
    for record in records:
        for phase, seconds in record.phases.items():
            merged[phase] = merged.get(phase, 0.0) + seconds
    return {phase: round(seconds, 6) for phase, seconds in sorted(merged.items())}


def test_batch_reuse_speedup(datasets, report, benchmark):
    collection = datasets[DATASET]
    observed = []
    phase_breakdowns = {}

    def run_cold():
        records = [
            run_algorithm("bigrid", collection, r, dataset=DATASET)
            for r in WORKLOAD
        ]
        observed.append([(record.winner, record.score) for record in records])
        phase_breakdowns["cold"] = _merge_phases(records)
        return sum(record.seconds for record in records)

    session = QuerySession(collection)
    for r in WORKLOAD:  # untimed warm-up: labels, keys, lower bounds
        session.query(r)

    def run_warm():
        records = [
            run_algorithm(
                "bigrid-session", collection, r, dataset=DATASET, session=session
            )
            for r in WORKLOAD
        ]
        observed.append([(record.winner, record.score) for record in records])
        phase_breakdowns["warm"] = _merge_phases(records)
        return sum(record.seconds for record in records)

    def collect():
        return best_of(run_cold), best_of(run_warm)

    cold_seconds, warm_seconds = benchmark.pedantic(collect, rounds=1, iterations=1)

    # Reuse must never change answers: every run saw identical
    # (winner, score) pairs, cold and warm alike.
    assert all(answers == observed[0] for answers in observed)
    # The acceptance bar: a warm session is strictly faster than cold
    # single-shot engines on the same workload.
    assert warm_seconds < cold_seconds

    speedup = cold_seconds / warm_seconds
    point = {
        "bench": "batch_reuse",
        "dataset": DATASET,
        "workload": WORKLOAD,
        "queries": len(WORKLOAD),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(speedup, 4),
        # Workload-total per-phase seconds (last measured repeat), so the
        # stored trajectory shows *which* phase the reuse removes.
        "cold_phases": phase_breakdowns["cold"],
        "warm_phases": phase_breakdowns["warm"],
        "provenance": bench_provenance(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_batch_reuse.json", "w") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report(
        "batch_reuse",
        format_table(
            ["dataset", "cold [s]", "warm session [s]", "speedup"],
            [[DATASET, round(cold_seconds, 3), round(warm_seconds, 3),
              round(speedup, 2)]],
            title="Warm QuerySession vs cold engines: six-query sweep",
        ),
    )
