"""Ablation: bitset backend orthogonality (footnote 3).

The paper states BIGrid works with any compressed bitset and leaves the
optimal choice open.  This bench runs the full query under all three
backends (EWAH, Roaring-style, uncompressed) on every dataset and
compares answers, index memory, and query time.  Shape asserted: answers
identical everywhere; both compressed backends beat the uncompressed one
on cell-bitset memory for the large-n datasets.
"""

from repro.bench.reporting import format_table
from repro.bitset import available_backends
from repro.core.engine import MIOEngine
from repro.grid.bigrid import BIGrid

from conftest import ALL_DATASETS, DEFAULT_R


def _cell_bitset_bytes(bigrid):
    total = 0
    for cell in bigrid.small_grid.cells.values():
        total += cell.bitset.size_in_bytes()
    for cell in bigrid.large_grid.cells.values():
        total += cell.bitset.size_in_bytes()
    return total


def test_backend_orthogonality(datasets, report, benchmark):
    backends = available_backends()

    def collect():
        rows = []
        for name in ALL_DATASETS:
            collection = datasets[name]
            scores = {}
            times = {}
            memory = {}
            for backend in backends:
                result = MIOEngine(collection, backend=backend).query(DEFAULT_R)
                scores[backend] = result.score
                times[backend] = result.total_time
                memory[backend] = _cell_bitset_bytes(
                    BIGrid.build(collection, DEFAULT_R, backend=backend)
                )
            assert len(set(scores.values())) == 1, f"{name}: answers diverge"
            rows.append(
                [
                    name,
                    scores["ewah"],
                    *(round(times[backend], 3) for backend in backends),
                    *(round(memory[backend] / 1024.0, 1) for backend in backends),
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = (
        ["dataset", "score"]
        + [f"{backend} [s]" for backend in backends]
        + [f"{backend} bits [KiB]" for backend in backends]
    )
    report(
        "ablation_backends",
        format_table(
            headers,
            rows,
            title=f"Footnote 3 ablation: bitset backends at r={DEFAULT_R} "
            f"(backends: {', '.join(backends)})",
        ),
    )

    # Compressed backends beat the uncompressed one where n is large
    # enough for per-cell bitsets to have something to compress.
    plain_index = 2 + len(backends) + list(backends).index("plain")
    ewah_index = 2 + len(backends) + list(backends).index("ewah")
    roaring_index = 2 + len(backends) + list(backends).index("roaring")
    large_n = {"neuron-2", "bird", "syn"}
    for row in rows:
        if row[0] in large_n:
            assert row[ewah_index] < row[plain_index]
            assert row[roaring_index] < row[plain_index]
