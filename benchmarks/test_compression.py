"""Footnote 4: bitset compression on the real workloads.

The paper reports that EWAH compresses each cell bitset by 80-99.9% in
bytes relative to uncompressed bitsets in the default setting.  This bench
builds the BIGrid for every dataset and compares the stored (EWAH) bitset
bytes against what fixed-size uncompressed bitsets (one word per 64
objects, for every cell) would occupy, and also times a full query under
each backend.
"""

from repro.bench.reporting import format_table
from repro.core.engine import MIOEngine
from repro.grid.bigrid import BIGrid

from conftest import ALL_DATASETS, DEFAULT_R


def _bitset_bytes(bigrid):
    """(compressed bytes, uncompressed-equivalent bytes) over all cells."""
    n = bigrid.collection.n
    uncompressed_per_cell = 8 * (-(-n // 64))
    compressed = 0
    cells = 0
    for cell in bigrid.small_grid.cells.values():
        compressed += cell.bitset.size_in_bytes()
        cells += 1
    for cell in bigrid.large_grid.cells.values():
        compressed += cell.bitset.size_in_bytes()
        cells += 1
    return compressed, cells * uncompressed_per_cell


def test_compression_ratio(datasets, report, benchmark):
    def collect():
        rows = []
        for name in ALL_DATASETS:
            collection = datasets[name]
            bigrid = BIGrid.build(collection, r=DEFAULT_R)
            compressed, uncompressed = _bitset_bytes(bigrid)
            ratio = 1.0 - compressed / uncompressed
            ewah_time = MIOEngine(collection, backend="ewah").query(DEFAULT_R).total_time
            plain_time = MIOEngine(collection, backend="plain").query(DEFAULT_R).total_time
            rows.append(
                [
                    name,
                    round(compressed / 1024.0, 1),
                    round(uncompressed / 1024.0, 1),
                    f"{100.0 * ratio:.1f}%",
                    round(ewah_time, 4),
                    round(plain_time, 4),
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "compression",
        format_table(
            [
                "dataset",
                "EWAH [KiB]",
                "uncompressed [KiB]",
                "saved",
                "ewah query [s]",
                "plain query [s]",
            ],
            rows,
            title=f"Footnote 4 analogue: cell-bitset compression at r={DEFAULT_R}",
        ),
    )

    saved_by_name = {row[0]: float(row[3].rstrip("%")) for row in rows}
    sizes = {name: datasets[name].n for name in saved_by_name}
    # Compression pays in proportion to n (an uncompressed bitset is
    # ceil(n/64) words per cell): the paper's datasets have n >= 776 and
    # save >80%; our scaled neuron analogue has n = 90 (two words per
    # cell), where marker overhead can even win.  Assert the trend: every
    # dataset with a few hundred objects compresses substantially, and the
    # largest-n dataset compresses the most.
    for name, saved in saved_by_name.items():
        if sizes[name] >= 300:
            assert saved > 50.0, f"{name}: EWAH should compress cell bitsets"
    largest = max(sizes, key=sizes.get)
    assert saved_by_name[largest] == max(saved_by_name.values())
    assert saved_by_name[largest] > 80.0  # the paper's ">80%" regime
