"""Ablation: what each stage of the filter-and-verification framework buys.

The paper's design stacks three mechanisms in front of exact scoring:
lower bounds (Lemma 1) set the pruning threshold, upper bounds (Theorem 2)
prune, and the best-first order enables early termination (Corollary 1).
This bench removes them one at a time on every dataset and reports how
many objects must be exactly verified:

* full pipeline            -- threshold = tau_max_low, early termination on
* no lower bounds          -- threshold 0: nothing pruned by Theorem 2
* no early termination     -- every candidate verified exactly

The exact answer must be identical in all configurations.
"""

from repro.bench.reporting import format_table
from repro.core.lower_bound import compute_lower_bounds
from repro.core.upper_bound import compute_upper_bounds
from repro.core.verification import verify_candidates
from repro.grid.bigrid import BIGrid

from conftest import ALL_DATASETS, DEFAULT_R


def _run(bigrid, r, use_lower, use_early):
    lower = compute_lower_bounds(bigrid)
    threshold = lower.tau_max if use_lower else 0
    upper = compute_upper_bounds(bigrid, tau_max_low=threshold)
    k = 1 if use_early else len(upper.candidates)
    verification = verify_candidates(bigrid, upper.candidates, r, k=k)
    best_score = verification.ranking[0][1]
    return best_score, len(upper.candidates), verification.verified


def test_ablation_pruning_stages(datasets, report, benchmark):
    def collect():
        rows = []
        for name in ALL_DATASETS:
            collection = datasets[name]
            bigrid = BIGrid.build(collection, r=DEFAULT_R)
            full = _run(bigrid, DEFAULT_R, use_lower=True, use_early=True)
            no_lower = _run(bigrid, DEFAULT_R, use_lower=False, use_early=True)
            no_early = _run(bigrid, DEFAULT_R, use_lower=True, use_early=False)
            assert full[0] == no_lower[0] == no_early[0]  # same exact answer
            rows.append(
                [
                    name,
                    collection.n,
                    full[1],
                    full[2],
                    no_lower[1],
                    no_lower[2],
                    no_early[2],
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "ablation_pruning",
        format_table(
            [
                "dataset",
                "n",
                "candidates",
                "verified",
                "cand (no LB)",
                "verified (no LB)",
                "verified (no ET)",
            ],
            rows,
            title=f"Ablation: pruning-stage contributions at r={DEFAULT_R}",
        ),
    )

    for name, n, cand, verified, cand_no_lb, verified_no_lb, verified_no_et in rows:
        # Lower bounds prune: without them every object is a candidate.
        assert cand_no_lb == n
        assert cand <= cand_no_lb
        # Early termination saves verifications on every dataset.
        assert verified <= verified_no_et
        # The full pipeline verifies a strict minority of objects.
        assert verified < n
