"""Fig. 5(a)-(e): single-core run time vs distance threshold r.

For every dataset, sweeps r over the paper's range and times NL (on the
datasets where it is feasible, as in the paper), SG, BIGrid, and
BIGrid-label.  The shapes the paper reports and this bench asserts:

* NL gets *faster* as r grows (interacting pairs found earlier);
* SG gets *slower* as r grows (denser width-r cells);
* BIGrid beats SG and NL across the sweep;
* BIGrid-label beats BIGrid.

All four algorithms must agree on the max score at every point.
"""

import pytest

from repro.bench import run_algorithm
from repro.bench.reporting import format_series

from conftest import ALL_DATASETS, NL_DATASETS, R_VALUES, best_of


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_fig5_runtime_sweep(dataset_name, datasets, label_stores, report, benchmark):
    collection = datasets[dataset_name]
    store = label_stores[dataset_name]
    algorithms = (["nl"] if dataset_name in NL_DATASETS else []) + [
        "sg",
        "bigrid",
        "bigrid-label",
    ]

    def sweep():
        series = {name: [] for name in algorithms}
        scores = []
        for r in R_VALUES:
            per_r = {}
            for name in algorithms:
                # Only the bigrid-label configuration consumes the warm
                # store; plain bigrid runs label-free, as in the paper.
                def run_once(name=name, r=r):
                    record = run_algorithm(
                        name,
                        collection,
                        r,
                        dataset=dataset_name,
                        label_store=store if name == "bigrid-label" else None,
                    )
                    per_r[name] = record.score
                    return record.seconds

                series[name].append(best_of(run_once))
            assert len(set(per_r.values())) == 1, f"answer mismatch at r={r}: {per_r}"
            scores.append(per_r["bigrid"])
        return series, scores

    series, scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "r",
        R_VALUES,
        {**{f"{n} [s]": series[n] for n in algorithms}, "max score": scores},
        title=f"Fig. 5 analogue ({dataset_name}): run time [s] vs r",
    )
    report(f"fig5_runtime_{dataset_name}", table)

    # Paper shape: NL trends down (or flat) with r, SG trends up.
    if "nl" in series:
        assert series["nl"][-1] < series["nl"][0] * 1.10, "NL should get faster as r grows"
    assert series["sg"][-1] > series["sg"][0] * 0.90, "SG should get slower as r grows"
    # BIGrid wins over both competitors across the sweep (the point
    # comparisons at a single r are noise-sensitive at this scale; the
    # paper's 10-700x factors come from datasets 300-2000x larger).
    assert sum(series["bigrid"]) < sum(series["sg"])
    if "nl" in series:
        assert sum(series["bigrid"]) < sum(series["nl"])
    # Labels never hurt, and typically help.
    assert sum(series["bigrid-label"]) < sum(series["bigrid"]) * 1.05
    # Scores can only grow with r (Definition 1).
    assert scores == sorted(scores)
