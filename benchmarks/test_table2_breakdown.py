"""Table II: run time of each operation, BIGrid vs BIGrid-label.

For every dataset at the default r, reports label input, grid mapping,
lower-bounding, upper-bounding, and verification times for both variants.
Paper shapes asserted:

* loading labels is not an overhead (it is cheap relative to the query);
* the with-label upper-bounding and verification are no slower (the
  paper's Table II shows them substantially faster);
* lower- and upper-bounding are much cheaper than exact scoring (compare
  with SG's scoring-only run time).
"""

from repro.bench import run_algorithm
from repro.bench.reporting import format_table

from conftest import ALL_DATASETS, DEFAULT_R

PHASES = ["label_input", "grid_mapping", "lower_bounding", "upper_bounding", "verification"]


def test_table2_phase_breakdown(datasets, label_stores, report, benchmark):
    def collect():
        rows = []
        per_dataset = {}
        for name in ALL_DATASETS:
            # Best-of-two measurements: the label win on some datasets is
            # ~10%, inside single-run noise on a shared machine.
            plain = min(
                (run_algorithm("bigrid", datasets[name], DEFAULT_R, dataset=name)
                 for _ in range(2)),
                key=lambda record: record.seconds,
            )
            labeled = min(
                (run_algorithm(
                    "bigrid-label",
                    datasets[name],
                    DEFAULT_R,
                    dataset=name,
                    label_store=label_stores[name],
                ) for _ in range(2)),
                key=lambda record: record.seconds,
            )
            per_dataset[name] = (plain, labeled)
            for phase in PHASES:
                rows.append(
                    [
                        name,
                        phase,
                        round(plain.phases.get(phase, 0.0), 4),
                        round(labeled.phases.get(phase, 0.0), 4),
                    ]
                )
        return rows, per_dataset

    rows, per_dataset = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "operation", "BIGrid [s]", "BIGrid-label [s]"],
        rows,
        title=f"Table II analogue: per-operation run time at r={DEFAULT_R}",
    )
    report("table2_breakdown", table)

    for name, (plain, labeled) in per_dataset.items():
        assert plain.score == labeled.score
        # Label input is not an overhead: well under the total query time.
        assert labeled.phases.get("label_input", 0.0) < labeled.seconds
        # The labeled run is never slower overall (Table II's headline).
        assert labeled.seconds <= plain.seconds * 1.10, name
        # Upper-bounding benefits the most from labels in the paper.
        assert (
            labeled.phases["upper_bounding"] <= plain.phases["upper_bounding"] * 1.10
        ), name
