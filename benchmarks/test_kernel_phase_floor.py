"""Per-phase speedup floors over the recorded kernel bench artifact.

``test_kernel_speedup.py`` measures paired python/numpy runs and writes
``results/BENCH_kernel_speedup.json``; this guard holds that artifact to
the kernel layer's perf contract so a regression in either vectorized op
fails CI instead of silently eroding the recorded numbers:

* **verification** and **lower_bounding** must not lose to the python
  reference on *any* recorded workload (these were the two losing ops
  before the batched verifier and the size-dispatched lower bounder);
* **end-to-end** must clear 5x on at least one Fig. 6 ``s=0.5`` workload
  and stay above the headline 3x target on the best workload overall.

The floors are checked with a generous noise margin: CI machines are
shared and the cheapest phases run in tens of microseconds, so a floor
of ``F`` is enforced as ``speedup >= F * NOISE_MARGIN``.  The committed
artifact itself must meet the floors without the margin (that is the
acceptance bar when regenerating it); the margin only absorbs run-to-run
jitter when CI refreshes the JSON before running this guard.
"""

import json
from pathlib import Path

import pytest

RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_kernel_speedup.json"
)

#: Run-to-run jitter allowance for floors re-measured on shared CI
#: runners.  0.8 tolerates a 20% unlucky run while still catching any
#: real regression (the pre-fix states were 0.69x verification and
#: 0.49x lower-bounding -- far below the margin).
NOISE_MARGIN = 0.8

#: Phase floors enforced on every recorded workload.
PHASE_FLOORS = {
    "verification": 1.0,
    "lower_bounding": 1.0,
}

#: At least one Fig. 6 sampled workload must clear this end to end.
SAMPLED_E2E_FLOOR = 5.0


@pytest.fixture(scope="module")
def artifact():
    if not RESULTS_PATH.exists():
        pytest.skip(
            "BENCH_kernel_speedup.json not found -- run "
            "benchmarks/test_kernel_speedup.py first"
        )
    with open(RESULTS_PATH) as handle:
        data = json.load(handle)
    assert data["bench"] == "kernel_speedup"
    assert data["workloads"], "artifact records no workloads"
    return data


def test_phase_floors_on_every_workload(artifact):
    failures = []
    for point in artifact["workloads"]:
        for phase, floor in PHASE_FLOORS.items():
            ratio = point["phase_speedups"].get(phase)
            assert ratio is not None, (point["workload"], phase)
            if ratio < floor * NOISE_MARGIN:
                failures.append(
                    f"{point['workload']}: {phase} speedup {ratio}x "
                    f"< floor {floor}x (margin {NOISE_MARGIN})"
                )
    assert not failures, "\n".join(failures)


def test_sampled_workload_clears_end_to_end_floor(artifact):
    sampled = [
        point for point in artifact["workloads"] if "s=0.5" in point["workload"]
    ]
    assert sampled, "artifact records no Fig. 6 s=0.5 workload"
    best = max(point["speedup"] for point in sampled)
    assert best >= SAMPLED_E2E_FLOOR * NOISE_MARGIN, (
        f"best s=0.5 end-to-end speedup {best}x below "
        f"{SAMPLED_E2E_FLOOR}x floor (margin {NOISE_MARGIN})"
    )


def test_headline_target_still_met(artifact):
    # The flagship >= 3x claim recorded by the speedup bench must hold on
    # the artifact as committed (no margin: this is the published number).
    best = max(point["speedup"] for point in artifact["workloads"])
    assert best >= artifact["target"]


def test_no_workload_loses_end_to_end(artifact):
    worst = min(point["speedup"] for point in artifact["workloads"])
    assert worst >= 1.0 * NOISE_MARGIN
