"""Shared fixtures for the benchmark suite.

Each benchmark module reproduces one table or figure of the paper.  The
rendered ascii tables land in ``benchmarks/results/*.txt`` (and in the
pytest output via ``report()``), so `pytest benchmarks/ --benchmark-only |
tee bench_output.txt` archives both the pytest-benchmark timing tables and
the paper-shaped series.

Datasets are the Table-I analogues from :mod:`repro.datasets.registry`,
built once per session.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.labels import LabelStore
from repro.datasets import load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's r sweep (Section V-B, after [7]).
R_VALUES = [4.0, 6.0, 8.0, 10.0]
DEFAULT_R = 4.0

#: Datasets small enough for the NL baseline (the paper likewise reports NL
#: only where it finished within its 8-hour budget).
NL_DATASETS = ("neuron", "neuron-2", "bird-2")
ALL_DATASETS = ("neuron", "neuron-2", "bird", "bird-2", "syn")


@pytest.fixture(scope="session")
def datasets():
    """All five Table-I analogues, built once."""
    return {name: load_dataset(name) for name in ALL_DATASETS}


@pytest.fixture(scope="session")
def label_stores(datasets, tmp_path_factory):
    """One warm, disk-backed label store per dataset: labels for every
    ceil(r) in the sweep, produced by plain BIGrid queries.  Disk-backed so
    the "Label-Input" row of Table II measures real I/O, as in the paper
    (labels are resident in external memory)."""
    from repro.core.engine import MIOEngine

    stores = {}
    for name, collection in datasets.items():
        store = LabelStore(tmp_path_factory.mktemp(f"labels_{name}"))
        engine = MIOEngine(collection, label_store=store)
        for r in R_VALUES:
            engine.query(r)
        # Drop the in-process cache: with-label queries must read from disk.
        stores[name] = LabelStore(store.directory)
    return stores


def best_of(measure, repeats=2):
    """Run a timing measurement ``repeats`` times and keep the minimum.

    The simulated schedules and phase timers are deterministic in *work*
    but not in wall-clock on a shared machine; the min of two runs is a
    robust estimator for the noise-free cost.
    """
    return min(measure() for _ in range(repeats))


@pytest.fixture(scope="session")
def report():
    """Write a rendered table to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _report
