"""Disabled-tracer overhead guard (observability acceptance bar).

The tracer's contract is "zero-cost-ish when disabled": with no tracer
attached, every instrumentation point in the shared
:class:`~repro.core.pipeline.PhasePipeline` orchestrator
costs one branch plus an empty context-manager enter/exit on the shared
no-op span, and the registry feeds cost one dict-slot float add each.
This bench re-threads the engine's pipeline *by hand* -- the same
BIGrid build and phase calls, none of the instrumentation -- and
asserts the instrumented engine stays within a few percent of it on a
micro-workload.

Wall-clock comparisons on shared machines are noisy (round-to-round
spread here exceeds the bound being enforced), so the guard uses a
paired estimator: each round times both pipelines back-to-back in
alternating order and the *minimum* per-round ratio is bounded.  Slow
machine drift hits both halves of a pair alike, and a real regression
(a per-object allocation, an accidental always-on span) puts a hard
floor under every ratio -- no lucky round can dip below ~1+overhead.
"""

import time

from repro import faults
from repro.bitset.factory import resolve_backend
from repro.core.engine import MIOEngine
from repro.core.lower_bound import compute_lower_bounds
from repro.core.query import MIOResult, PhaseStats
from repro.core.upper_bound import compute_upper_bounds
from repro.core.verification import verify_candidates
from repro.grid.bigrid import BIGrid
from repro.resilience import checkpoint

DATASET = "neuron"
WORKLOAD = [4.0, 6.0, 8.0]
ROUNDS = 6
#: Bound on the minimum paired engine/bare ratio (the acceptance bar's
#: "within ~5% of the pre-instrumentation path").
RATIO_BOUND = 1.05


def uninstrumented_query(collection, r, backend="ewah"):
    """The label-free pipeline exactly as the engine ran it before the
    observability layer: phase timers, fault points, and deadline
    checkpoints included (those predate the tracer); spans and registry
    feeds excluded.  This is the floor the disabled-tracer engine is
    held to.
    """
    stats = PhaseStats()
    _, resolved = resolve_backend(backend)

    faults.trip("grid_mapping")
    checkpoint(None, "grid_mapping")
    started = time.perf_counter()
    bigrid = BIGrid.build(collection, r, backend=resolved)
    stats.add_time("grid_mapping", time.perf_counter() - started)
    stats.set_count("small_cells", len(bigrid.small_grid))
    stats.set_count("large_cells", len(bigrid.large_grid))
    stats.set_count("mapped_points", bigrid.mapped_points)

    faults.trip("lower_bounding")
    checkpoint(None, "lower_bounding")
    started = time.perf_counter()
    lower = compute_lower_bounds(bigrid, keep_bitsets=False, stats=stats)
    stats.add_time("lower_bounding", time.perf_counter() - started)

    faults.trip("upper_bounding")
    checkpoint(None, "upper_bounding")
    started = time.perf_counter()
    upper = compute_upper_bounds(bigrid, lower.tau_max, stats=stats)
    stats.add_time("upper_bounding", time.perf_counter() - started)

    faults.trip("verification")
    started = time.perf_counter()
    verification = verify_candidates(bigrid, upper.candidates, r, k=1, stats=stats)
    stats.add_time("verification", time.perf_counter() - started)
    stats.set_count("candidates_total", len(upper.candidates))
    stats.set_count("candidates_settled", verification.verified)

    winner, score = verification.ranking[0]
    MIOResult(
        algorithm="bigrid",
        r=r,
        winner=winner,
        score=score,
        topk=None,
        phases=stats.phases,
        counters=stats.counters,
        memory_bytes=bigrid.memory_bytes(),
        notes={},
    )
    return winner, score


def test_disabled_tracer_overhead(datasets, report):
    collection = datasets[DATASET]
    engine = MIOEngine(collection)

    def run_bare():
        started = time.perf_counter()
        answers = [uninstrumented_query(collection, r) for r in WORKLOAD]
        elapsed = time.perf_counter() - started
        return elapsed, answers

    def run_engine():
        started = time.perf_counter()
        answers = [
            (result.winner, result.score)
            for result in (engine.query(r) for r in WORKLOAD)
        ]
        elapsed = time.perf_counter() - started
        return elapsed, answers

    # Warm-up: JIT-free Python still benefits from touched caches/allocators.
    run_bare(), run_engine()

    rounds = []
    for index in range(ROUNDS):
        # Alternate which side goes first so any within-round warm-up or
        # throttling trend cancels across rounds instead of biasing one side.
        if index % 2 == 0:
            bare_seconds, bare_answers = run_bare()
            engine_seconds, engine_answers = run_engine()
        else:
            engine_seconds, engine_answers = run_engine()
            bare_seconds, bare_answers = run_bare()
        assert engine_answers == bare_answers  # instrumentation changes nothing
        rounds.append((bare_seconds, engine_seconds))

    best_ratio = min(engine / bare for bare, engine in rounds)
    lines = [
        "Disabled-tracer overhead guard (paired rounds, alternating order)",
        f"  {'round':>5} {'bare s':>8} {'engine s':>9} {'ratio':>7}",
    ]
    for index, (bare_seconds, engine_seconds) in enumerate(rounds):
        lines.append(
            f"  {index:>5} {bare_seconds:>8.3f} {engine_seconds:>9.3f}"
            f" {engine_seconds / bare_seconds:>7.3f}"
        )
    lines.append(
        f"  best ratio: {best_ratio:.3f} (bound: {RATIO_BOUND:.2f})"
    )
    report("obs_overhead", "\n".join(lines))
    assert best_ratio <= RATIO_BOUND, (
        f"disabled-tracer engine ran at {best_ratio:.3f}x the bare "
        f"pipeline in its best round (bound {RATIO_BOUND:.2f}x): every "
        "round paid for the instrumentation, so the overhead is real"
    )


#: Production sampling rate the telemetry guard runs at (the `repro
#: serve` default): 1-in-100 queries carries a full span tree.
SAMPLE_RATE = 0.01


def test_sampled_telemetry_overhead(datasets, report):
    """Telemetry *enabled* must fit the same paired-overhead budget.

    The tentpole's acceptance bar: with the hub recording a profile per
    query, feeding the slow-query log, and head-sampling at the serve
    default of 1%, the engine stays within RATIO_BOUND of a run with
    telemetry disabled.  Same paired min-ratio estimator as the
    disabled-tracer guard; the baseline here is the instrumented engine
    itself (hub off), so the ratio isolates what telemetry adds.
    """
    from repro.obs.telemetry import Telemetry, set_telemetry

    collection = datasets[DATASET]
    engine = MIOEngine(collection)

    # An isolated hub so the guard neither inherits a sink nor pollutes
    # the process hub's rings; restored unconditionally on the way out.
    hub = Telemetry(sample_rate=SAMPLE_RATE, slow_ms=250.0)
    previous = set_telemetry(hub)
    try:

        def run_with_telemetry():
            hub.enabled = True
            started = time.perf_counter()
            answers = [
                (result.winner, result.score)
                for result in (engine.query(r) for r in WORKLOAD)
            ]
            elapsed = time.perf_counter() - started
            return elapsed, answers

        def run_without_telemetry():
            hub.enabled = False
            started = time.perf_counter()
            answers = [
                (result.winner, result.score)
                for result in (engine.query(r) for r in WORKLOAD)
            ]
            elapsed = time.perf_counter() - started
            return elapsed, answers

        run_without_telemetry(), run_with_telemetry()  # warm-up

        rounds = []
        for index in range(ROUNDS):
            if index % 2 == 0:
                off_seconds, off_answers = run_without_telemetry()
                on_seconds, on_answers = run_with_telemetry()
            else:
                on_seconds, on_answers = run_with_telemetry()
                off_seconds, off_answers = run_without_telemetry()
            assert on_answers == off_answers  # telemetry changes nothing
            rounds.append((off_seconds, on_seconds))
    finally:
        set_telemetry(previous)

    best_ratio = min(on / off for off, on in rounds)
    lines = [
        f"Sampled-telemetry overhead guard (rate={SAMPLE_RATE}, paired rounds)",
        f"  {'round':>5} {'off s':>8} {'on s':>9} {'ratio':>7}",
    ]
    for index, (off_seconds, on_seconds) in enumerate(rounds):
        lines.append(
            f"  {index:>5} {off_seconds:>8.3f} {on_seconds:>9.3f}"
            f" {on_seconds / off_seconds:>7.3f}"
        )
    lines.append(f"  best ratio: {best_ratio:.3f} (bound: {RATIO_BOUND:.2f})")
    lines.append(
        f"  profiles recorded: {hub.profiles.totals()['recorded']}, "
        f"sampled: {hub.profiles.totals()['sampled']}"
    )
    report("obs_overhead_sampled", "\n".join(lines))
    assert hub.profiles.totals()["recorded"] > 0, (
        "the enabled half never recorded a profile -- the guard is not "
        "measuring telemetry"
    )
    assert best_ratio <= RATIO_BOUND, (
        f"telemetry-enabled engine ran at {best_ratio:.3f}x the "
        f"telemetry-off engine in its best round (bound {RATIO_BOUND:.2f}x): "
        "every round paid for the hub, so the overhead is real"
    )
